// Package trace defines a compact on-disk format for value traces — the
// (PC, category, value) event streams the paper's simulations consume —
// plus streaming writer/reader types for capture and replay.
//
// The paper's methodology is trace-driven simulation; this package is the
// trace-capture ecosystem around it: capture once with cmd/vptrace (or
// trace.Capture), then replay the identical stream against any number of
// predictor configurations without re-running the workload.
//
// Format: a gzip stream containing a header followed by varint-encoded
// records. Each record stores the PC as a zigzag delta from the previous
// PC (instruction working sets are local, so deltas are small), the
// category byte, and the value as a zigzag delta from the previous value
// produced at that same PC (exploiting the paper's observation that
// per-instruction value sequences are strongly patterned; constants
// encode as zero, strides as small fixed deltas).
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Event is one predicted-instruction outcome.
type Event struct {
	PC    uint64
	Cat   isa.Category
	Value uint64
}

// Magic identifies trace files.
const Magic = "VPTRACE1"

// Header describes a trace stream.
type Header struct {
	Benchmark string
	Opt       int // compiler optimization level used
	Scale     int
}

// Writer streams events to a trace file.
type Writer struct {
	gz      *gzip.Writer
	bw      *bufio.Writer
	lastPC  uint64
	lastVal map[uint64]uint64
	count   uint64
	buf     [3 * binary.MaxVarintLen64]byte
}

// NewWriter writes the header and returns a streaming writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriterSize(gz, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	writeString := func(s string) error {
		var b [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(b[:], uint64(len(s)))
		if _, err := bw.Write(b[:n]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeString(h.Benchmark); err != nil {
		return nil, err
	}
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], uint64(h.Opt))
	n += binary.PutUvarint(b[n:], uint64(h.Scale))
	if _, err := bw.Write(b[:n]); err != nil {
		return nil, err
	}
	return &Writer{gz: gz, bw: bw, lastVal: make(map[uint64]uint64)}, nil
}

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one event.
func (w *Writer) Write(ev Event) error {
	n := binary.PutUvarint(w.buf[:], zigzag(int64(ev.PC)-int64(w.lastPC)))
	w.buf[n] = byte(ev.Cat)
	n++
	prev := w.lastVal[ev.PC]
	n += binary.PutUvarint(w.buf[n:], zigzag(int64(ev.Value)-int64(prev)))
	w.lastPC = ev.PC
	w.lastVal[ev.PC] = ev.Value
	w.count++
	_, err := w.bw.Write(w.buf[:n])
	return err
}

// Count returns the number of events written.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes and finishes the gzip stream (the underlying writer is
// not closed).
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.gz.Close()
}

// Reader streams events back from a trace file.
type Reader struct {
	Header  Header
	br      *bufio.Reader
	gz      *gzip.Reader
	lastPC  uint64
	lastVal map[uint64]uint64
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	br := bufio.NewReaderSize(gz, 1<<16)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(magic) != Magic {
		return nil, errors.New("trace: bad magic (not a vptrace file)")
	}
	var h Header
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 4096 {
		return nil, errors.New("trace: unreasonable benchmark name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	h.Benchmark = string(name)
	opt, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	scale, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	h.Opt = int(opt)
	h.Scale = int(scale)
	return &Reader{Header: h, br: br, gz: gz, lastVal: make(map[uint64]uint64)}, nil
}

// readUvarint decodes one varint, distinguishing a clean end of stream
// (no bytes: io.EOF) from a varint cut off mid-encoding
// (io.ErrUnexpectedEOF) — binary.ReadUvarint reports both as io.EOF,
// which would make a truncated record look like a clean end.
func (r *Reader) readUvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		b, err := r.br.ReadByte()
		if err != nil {
			if shift > 0 {
				return 0, unexpected(err)
			}
			return 0, err // io.EOF passes through at a record boundary
		}
		// The 10th byte may only contribute bit 63: anything larger
		// (or an 11th byte) overflows uint64.
		if shift == 63 && b > 1 {
			return 0, errors.New("trace: varint overflows uint64")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
}

// Read returns the next event; io.EOF at end of stream.
func (r *Reader) Read() (Event, error) {
	du, err := r.readUvarint()
	if err != nil {
		return Event{}, err // io.EOF passes through
	}
	cat, err := r.br.ReadByte()
	if err != nil {
		return Event{}, unexpected(err)
	}
	dv, err := r.readUvarint()
	if err != nil {
		return Event{}, unexpected(err)
	}
	pc := uint64(int64(r.lastPC) + unzigzag(du))
	val := uint64(int64(r.lastVal[pc]) + unzigzag(dv))
	r.lastPC = pc
	r.lastVal[pc] = val
	if isa.Category(cat) >= isa.CatNone {
		return Event{}, fmt.Errorf("trace: corrupt category byte %d", cat)
	}
	return Event{PC: pc, Cat: isa.Category(cat), Value: val}, nil
}

func unexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadBatch reads up to len(dst) events into dst and returns the number
// read. At the end of the stream it returns 0 and io.EOF; a partial fill
// (0 < n < len(dst)) with a nil error also means the stream ended and the
// next call returns 0, io.EOF. Corrupt input returns the events decoded
// so far alongside a non-EOF error.
func (r *Reader) ReadBatch(dst []Event) (int, error) {
	for i := range dst {
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			if i == 0 {
				return 0, io.EOF
			}
			return i, nil
		}
		if err != nil {
			return i, err
		}
		dst[i] = ev
	}
	return len(dst), nil
}

// ForEachBatch replays the stream through fn in batches of up to
// batchSize events (0 = a default of 4096). The slice is reused between
// calls — consumers that retain events must copy, matching the
// sim.Config.OnValues contract.
func (r *Reader) ForEachBatch(batchSize int, fn func([]Event) error) error {
	if batchSize <= 0 {
		batchSize = 4096
	}
	buf := make([]Event, batchSize)
	for {
		n, err := r.ReadBatch(buf)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if n > 0 {
			if err := fn(buf[:n]); err != nil {
				return err
			}
		}
		if n < len(buf) {
			return nil
		}
	}
}

// ForEach replays the whole stream through fn, stopping on fn error.
func (r *Reader) ForEach(fn func(Event) error) error {
	for {
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// FromSim converts a simulator event.
func FromSim(ev sim.ValueEvent) Event {
	return Event{PC: ev.PC, Cat: ev.Cat, Value: ev.Value}
}
