// Benchmarks: one testing.B per paper artifact, regenerating each table
// and figure at a reduced event budget. Run with:
//
//	go test -bench=. -benchmem
//
// Per-op metrics report events/op so throughput is comparable across
// artifacts. For the full-size artifacts use cmd/vpredict.
package repro_test

import (
	"errors"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/core/kernel"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/predstat"
	"repro/internal/seqclass"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// benchEvents is the per-benchmark event budget used by the testing.B
// harness; small enough for iteration, large enough to keep shapes.
const benchEvents = 100_000

func runExperiment(b *testing.B, id string, benchmarks ...string) {
	b.Helper()
	cfg := experiments.Config{Events: benchEvents, Benchmarks: benchmarks}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunOne(io.Discard, id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// fastSubset keeps the per-iteration cost of suite-backed benchmarks
// manageable: one loop-heavy and one irregular workload.
var fastSubset = []string{"compress", "m88ksim"}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", fastSubset...) }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4", fastSubset...) }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5", fastSubset...) }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3", fastSubset...) }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4", fastSubset...) }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5", fastSubset...) }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6", fastSubset...) }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7", fastSubset...) }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8", fastSubset...) }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9", fastSubset...) }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10", fastSubset...) }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkCeil(b *testing.B)   { runExperiment(b, "ceil", fastSubset...) }

// --- component micro-benchmarks -------------------------------------------------

// benchPredictor measures raw predictor throughput on a mixed stream.
func benchPredictor(b *testing.B, p core.Predictor) {
	b.Helper()
	// 64 static instructions: strides, constants and period-4 repeats.
	rns := seqclass.NonStridePeriod(5, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i % 64)
		var v uint64
		switch pc % 3 {
		case 0:
			v = uint64(i) * 8
		case 1:
			v = 42
		default:
			v = rns[i%4]
		}
		pred, ok := p.Predict(pc)
		_ = pred
		_ = ok
		p.Update(pc, v)
	}
}

func BenchmarkPredictLastValue(b *testing.B) { benchPredictor(b, core.NewLastValue()) }
func BenchmarkPredictStride2D(b *testing.B)  { benchPredictor(b, core.NewStride2Delta()) }
func BenchmarkPredictFCM1(b *testing.B)      { benchPredictor(b, core.NewFCM(1)) }
func BenchmarkPredictFCM3(b *testing.B)      { benchPredictor(b, core.NewFCM(3)) }

// BenchmarkPredictFCM8 is the high-order row: Figure 11 sweeps orders up
// to 8, where the per-event context work (one rolling-signature table per
// order) is at its deepest.
func BenchmarkPredictFCM8(b *testing.B)   { benchPredictor(b, core.NewFCM(8)) }
func BenchmarkPredictHybrid(b *testing.B) { benchPredictor(b, core.NewStrideFCMHybrid(3)) }

// BenchmarkPredictFCM3Steady measures the steady state the online service
// lives in: strictly periodic values over a fixed PC set, fully warmed
// before the timer starts, so no PC, context or value is ever new. The CI
// bench smoke asserts 0 allocs/op here — any per-event allocation that
// sneaks back into the predict/update path fails the gate.
func BenchmarkPredictFCM3Steady(b *testing.B) {
	p := core.NewFCM(3)
	rns := seqclass.NonStridePeriod(5, 4)
	step := func(i int) {
		pc := uint64(i % 64)
		v := rns[(uint64(i/64)+pc)%4] // period-4 value sequence per PC
		pred, ok := p.Predict(pc)
		_ = pred
		_ = ok
		p.Update(pc, v)
	}
	warm := 64 * 16 // several full periods: every context exists
	for i := 0; i < warm; i++ {
		step(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(warm + i)
	}
}

// --- bank batch-path benchmarks -------------------------------------------------

// bankBenchStream builds the fcm3 mixed stream (strides, constants,
// period-4 repeats over 64 PCs) as SoA batches for the batch-vs-per-event
// comparison. The stream is replayed cyclically, so after one warm pass
// every PC, context and value exists and both paths run in steady state.
var bankStreamOnce struct {
	pcs, vals []uint64
}

const bankBenchBatch = 4096

func bankBenchStream() (pcs, vals []uint64) {
	if bankStreamOnce.pcs != nil {
		return bankStreamOnce.pcs, bankStreamOnce.vals
	}
	rns := seqclass.NonStridePeriod(5, 4)
	const n = 16 * bankBenchBatch
	pcs = make([]uint64, n)
	vals = make([]uint64, n)
	for i := 0; i < n; i++ {
		pc := uint64(i % 64)
		pcs[i] = pc
		switch pc % 3 {
		case 0:
			vals[i] = uint64(i) * 8
		case 1:
			vals[i] = 42
		default:
			vals[i] = rns[i%4]
		}
	}
	bankStreamOnce.pcs, bankStreamOnce.vals = pcs, vals
	return pcs, vals
}

// BenchmarkBankStepBatch measures one 4096-event batch through
// Bank.StepBatch on a warmed fcm3 bank: the grouped, kernel-fused hot
// path the engine workers, serve shards and warm replay all share. CI
// gates allocs/op == 0 here, and the ns/op ratio against
// BenchmarkBankStepEvents is the batch path's speedup over per-event
// stepping (the acceptance bar is ≥1.5×).
func BenchmarkBankStepBatch(b *testing.B) {
	pcs, vals := bankBenchStream()
	nb := len(pcs) / bankBenchBatch
	bank := core.NewBank(core.NewFCM(3))
	// Two warm passes: the second crosses the cyclic wrap seam, so the
	// contexts spanning end-of-stream → start-of-stream exist too and the
	// timed loop is genuinely steady-state.
	for g := 0; g < 2*nb; g++ {
		off := (g % nb) * bankBenchBatch
		bank.StepBatch(pcs[off:off+bankBenchBatch], vals[off:off+bankBenchBatch])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i % nb) * bankBenchBatch
		bank.StepBatch(pcs[off:off+bankBenchBatch], vals[off:off+bankBenchBatch])
	}
	b.ReportMetric(bankBenchBatch, "events/op")
}

// BenchmarkBankStepBatchObserved is BenchmarkBankStepBatch with a
// predictability tracker attached through the bank's run-observer hook —
// the configuration every vpserve shard runs by default. CI gates
// allocs/op == 0 here too; the ns/op delta against BenchmarkBankStepBatch
// prices online predictability analytics (entropy tables at four orders,
// ceilings, window upkeep), payable per shard, removable with -predstat
// false. The plain benchmark itself must stay within 10% of its history:
// a detached observer is one nil check.
func BenchmarkBankStepBatchObserved(b *testing.B) {
	pcs, vals := bankBenchStream()
	nb := len(pcs) / bankBenchBatch
	bank := core.NewBank(core.NewFCM(3))
	tr := predstat.NewTracker(predstat.Config{PredNames: []string{"fcm3"}})
	bank.SetObserver(tr)
	for g := 0; g < 2*nb; g++ {
		off := (g % nb) * bankBenchBatch
		bank.StepBatch(pcs[off:off+bankBenchBatch], vals[off:off+bankBenchBatch])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i % nb) * bankBenchBatch
		bank.StepBatch(pcs[off:off+bankBenchBatch], vals[off:off+bankBenchBatch])
	}
	b.ReportMetric(bankBenchBatch, "events/op")
}

// BenchmarkBankStepEvents is the per-event reference for the same stream
// and predictor: one core.StepBank call per event, one batch's worth of
// events per op so ns/op is directly comparable to BenchmarkBankStepBatch.
func BenchmarkBankStepEvents(b *testing.B) {
	pcs, vals := bankBenchStream()
	nb := len(pcs) / bankBenchBatch
	ps := []core.Predictor{core.NewFCM(3)}
	correct := make([]uint64, 1)
	for g := 0; g < 2; g++ { // two warm passes, incl. the wrap seam
		for j := 0; j < len(pcs); j++ {
			core.StepBank(ps, correct, pcs[j], vals[j])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i % nb) * bankBenchBatch
		for j := off; j < off+bankBenchBatch; j++ {
			core.StepBank(ps, correct, pcs[j], vals[j])
		}
	}
	b.ReportMetric(bankBenchBatch, "events/op")
}

// BenchmarkKernelCompareCount measures the raw compare+count kernel the
// predictor StepRun paths are built on: one 4096-lane constant-equality
// pass (hit bytes out, popcount back). Under -tags vpasmkernel on amd64
// this exercises the AVX2 variant; otherwise the portable SWAR path. CI
// ratchets ns/op here under both tag sets, so neither implementation can
// silently regress.
func BenchmarkKernelCompareCount(b *testing.B) {
	const lanes = 4096
	values := make([]uint64, lanes)
	hits := make([]byte, lanes)
	for i := range values {
		if i%3 == 0 {
			values[i] = 7
		} else {
			values[i] = uint64(i)
		}
	}
	b.SetBytes(lanes * 8)
	b.ReportAllocs()
	b.ResetTimer()
	var n uint64
	for i := 0; i < b.N; i++ {
		n += kernel.CompareConstCount(values, 7, hits)
	}
	_ = n
	b.ReportMetric(lanes, "events/op")
}

// BenchmarkSimulator measures raw simulation speed (instructions/op).
func BenchmarkSimulator(b *testing.B) {
	w := bench.Compress()
	prog, err := w.Compile(bench.RefOpt)
	if err != nil {
		b.Fatal(err)
	}
	input := w.Input(1)
	b.ReportAllocs()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(prog, input, sim.Config{MaxInstr: 2_000_000})
		if err != nil && res == nil {
			b.Fatal(err)
		}
		instr += res.Instructions
	}
	b.ReportMetric(float64(instr)/float64(b.N), "instrs/op")
}

// BenchmarkCompiler measures end-to-end MiniC compile time for the
// largest workload source.
func BenchmarkCompiler(b *testing.B) {
	w := bench.Xlisp()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Compile(2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- engine benchmarks ----------------------------------------------------------

// engineSubset has four benchmarks so the Workers4 variant actually gets
// four-way benchmark-level parallelism (RunSuite caps workers at the
// workload count).
var engineSubset = []string{"compress", "m88ksim", "perl", "xlisp"}

// benchEngineSuite measures the shared suite pass through internal/engine
// at a given worker count (events/op; workers=1 is the serial reference
// path, so the serial-vs-parallel ratio is the engine's speedup).
func benchEngineSuite(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		suite, err := engine.RunSuite(engine.Config{
			Analysis: analysis.Config{Events: benchEvents, Benchmarks: engineSubset},
			Workers:  workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range suite.Results {
			events += r.Events
		}
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

func BenchmarkEngineSuiteSerial(b *testing.B)   { benchEngineSuite(b, 1) }
func BenchmarkEngineSuiteWorkers2(b *testing.B) { benchEngineSuite(b, 2) }
func BenchmarkEngineSuiteWorkers4(b *testing.B) { benchEngineSuite(b, 4) }

// benchDelivery measures raw event-delivery overhead in the simulator:
// per-event callback vs batched delivery (events/op on identical work).
func benchDelivery(b *testing.B, batchSize int) {
	b.Helper()
	w := bench.Compress()
	prog, err := w.Compile(bench.RefOpt)
	if err != nil {
		b.Fatal(err)
	}
	input := w.Input(1)
	cfg := sim.Config{MaxInstr: 1 << 62, MaxEvents: benchEvents}
	var events uint64
	if batchSize == 0 {
		cfg.OnValue = func(ev sim.ValueEvent) { events++ }
	} else {
		cfg.BatchSize = batchSize
		cfg.OnValues = func(evs []sim.ValueEvent) { events += uint64(len(evs)) }
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events = 0
		if _, err := sim.Run(prog, input, cfg); err != nil && !errors.Is(err, sim.ErrBudget) {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events), "events/op")
}

func BenchmarkDeliveryPerEvent(b *testing.B)    { benchDelivery(b, 0) }
func BenchmarkDeliveryBatched(b *testing.B)     { benchDelivery(b, sim.DefaultBatchSize) }
func BenchmarkDeliveryBatchedTiny(b *testing.B) { benchDelivery(b, 64) }

// BenchmarkEngineFanout measures one benchmark through the full fan-out
// (5 predictor banks + merger) against BenchmarkFullPass's serial
// all-collector loop below.
func BenchmarkEngineFanout(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := engine.RunBenchmark(bench.M88ksim(), analysis.Config{Events: benchEvents}, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchEvents, "events/op")
}

// --- serve benchmarks -----------------------------------------------------------

// serveBenchStream builds a synthetic mixed stream (strides, constants,
// period-4 repeats over 512 PCs) shared by the serve benchmarks.
var serveStreamOnce struct {
	events []serve.Event
}

func serveBenchStream() []serve.Event {
	if serveStreamOnce.events != nil {
		return serveStreamOnce.events
	}
	rns := seqclass.NonStridePeriod(5, 4)
	const n = 200_000
	evs := make([]serve.Event, n)
	for i := 0; i < n; i++ {
		pc := uint64((i % 512) * 4)
		var v uint64
		switch pc % 3 {
		case 0:
			v = uint64(i) * 8
		case 1:
			v = 42
		default:
			v = rns[i%4]
		}
		evs[i] = serve.Event{PC: pc, Value: v}
	}
	serveStreamOnce.events = evs
	return evs
}

// benchServe measures end-to-end service throughput — TCP round trips,
// request bucketing and the full standard predictor bank — at a given
// shard count, with four concurrent client connections. events/op is
// fixed, so ns/op across variants is the shard-scaling curve.
func benchServe(b *testing.B, shards int) {
	b.Helper()
	evs := serveBenchStream()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := serve.New(serve.Config{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Start("127.0.0.1:0", ""); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := serve.DriveEvents(evs, serve.DriveConfig{
			Addr:    s.Addr().String(),
			Clients: 4,
		})
		b.StopTimer()
		s.Close()
		b.StartTimer()
		if err != nil {
			b.Fatal(err)
		}
		if res.Events != uint64(len(evs)) {
			b.Fatalf("drove %d of %d events", res.Events, len(evs))
		}
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}

func BenchmarkServe1Shard(b *testing.B)  { benchServe(b, 1) }
func BenchmarkServeShards2(b *testing.B) { benchServe(b, 2) }
func BenchmarkServeShards4(b *testing.B) { benchServe(b, 4) }

// --- snapshot benchmarks --------------------------------------------------------

// trainedSnapshot builds the checkpoint image of the standard predictor
// bank after learning the serve bench stream, through the real capture
// path: a 4-shard server drives the stream and writes a checkpoint.
// Cached so the encode/decode/restore benchmarks all measure the same
// state.
var trainedSnapshotOnce struct {
	snap *snapshot.Snapshot
	data []byte
}

func trainedSnapshot(tb testing.TB) (*snapshot.Snapshot, []byte) {
	if trainedSnapshotOnce.snap != nil {
		return trainedSnapshotOnce.snap, trainedSnapshotOnce.data
	}
	dir := tb.TempDir()
	s, err := serve.New(serve.Config{Shards: 4})
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		tb.Fatal(err)
	}
	if _, err := serve.DriveEvents(serveBenchStream(), serve.DriveConfig{Addr: s.Addr().String(), Clients: 4}); err != nil {
		s.Close()
		tb.Fatal(err)
	}
	info, err := s.Shutdown(dir)
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := snapshot.ReadFile(info.Path)
	if err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(info.Path)
	if err != nil {
		tb.Fatal(err)
	}
	trainedSnapshotOnce.snap = snap
	trainedSnapshotOnce.data = data
	return snap, data
}

// BenchmarkSnapshotEncode measures the codec's framing + checksum
// throughput: MB/s of file bytes produced from an already-captured
// image (the per-predictor SaveState cost is measured end to end by
// BenchmarkServeCheckpoint). events/op is the learning the image
// represents.
func BenchmarkSnapshotEncode(b *testing.B) {
	snap, data := trainedSnapshot(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Encode(io.Discard, snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(serveBenchStream())), "events/op")
}

// BenchmarkSnapshotDecode measures checkpoint parse+verify throughput
// (checksum, framing, structure) without predictor reconstruction.
func BenchmarkSnapshotDecode(b *testing.B) {
	_, data := trainedSnapshot(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.DecodeBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures the full warm-restart path: decode,
// verify and load every predictor table into fresh instances. events/op
// is the events-to-warm equivalent — the stream length a cold server
// would have to re-serve to reach the same state.
func BenchmarkSnapshotRestore(b *testing.B) {
	_, data := trainedSnapshot(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := snapshot.DecodeBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := serve.NewWarmBank(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(serveBenchStream())), "events/op")
}

// BenchmarkServeCheckpoint measures an online checkpoint of a loaded
// server: the request-atomic cut, per-shard serialization and the atomic
// file write, while the server is otherwise idle.
func BenchmarkServeCheckpoint(b *testing.B) {
	evs := serveBenchStream()
	dir := b.TempDir()
	s, err := serve.New(serve.Config{Shards: 4, CheckpointDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := serve.DriveEvents(evs, serve.DriveConfig{Addr: s.Addr().String(), Clients: 4}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := s.WriteCheckpoint(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		os.Remove(info.Path) // keep the temp dir from filling the disk
		b.StartTimer()
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}

// deltaBenchStream builds the delta-checkpoint workload: a wide static
// PC set (8192 PCs) so each predictor's canonical state spans many
// chunks, plus a hot stream over the lowest ~5% of those PCs. The hot
// set is contiguous in the ascending-PC canonical order, so steady-state
// mutation dirties a small clustered band of chunks — the access pattern
// (few hot instructions, stable table membership) delta checkpoints are
// built for.
var deltaStreamOnce struct {
	train, hot []serve.Event
}

func deltaBenchStream() (train, hot []serve.Event) {
	if deltaStreamOnce.train != nil {
		return deltaStreamOnce.train, deltaStreamOnce.hot
	}
	rns := seqclass.NonStridePeriod(5, 4)
	const (
		pcCount = 8192
		hotPCs  = pcCount * 5 / 100
		n       = 256_000
	)
	val := func(pc uint64, i int) uint64 {
		switch pc % 3 {
		case 0:
			return uint64(i) * 8
		case 1:
			return 42
		default:
			return rns[i%4]
		}
	}
	train = make([]serve.Event, n)
	for i := range train {
		pc := uint64((i % pcCount) * 4)
		train[i] = serve.Event{PC: pc, Value: val(pc, i)}
	}
	hot = make([]serve.Event, 4096)
	for i := range hot {
		pc := uint64((i % hotPCs) * 4)
		hot[i] = serve.Event{PC: pc, Value: val(pc, n+i)}
	}
	deltaStreamOnce.train, deltaStreamOnce.hot = train, hot
	return train, hot
}

// BenchmarkSnapshotDeltaEncode measures an incremental checkpoint cut on
// a loaded delta-mode server when ~5% of PCs have mutated since the
// previous cut: per op, the hot PC band is re-driven (untimed) and then
// one delta is cut (timed) — dirty-chunk serialization, content-hash
// dedup of the clean remainder, and the streaming file write. The
// full-cut reference over the same mutation pattern is measured during
// setup and reported as full_cut_ns and full_bytes; bytes_x and time_x
// are the full/delta ratios, with ≥5× the acceptance bar for both. CI
// ratchets ns/op here, so the clean-chunk skip path cannot silently
// decay back into a full serialization.
func BenchmarkSnapshotDeltaEncode(b *testing.B) {
	train, hot := deltaBenchStream()
	dir := b.TempDir()
	s, err := serve.New(serve.Config{Shards: 4, CheckpointDir: dir, DeltaCheckpoints: true, FullEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := serve.DriveEvents(train, serve.DriveConfig{Addr: s.Addr().String(), Clients: 4}); err != nil {
		b.Fatal(err)
	}
	mutate := func() {
		if _, err := serve.DriveEvents(hot, serve.DriveConfig{Addr: s.Addr().String()}); err != nil {
			b.Fatal(err)
		}
	}
	size := func(path string) int64 {
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		os.Remove(path) // keep the temp dir from filling the disk
		return fi.Size()
	}

	// Full-cut reference over the identical state and mutation pattern.
	var fullNs, fullBytes int64
	const refIters = 3
	for i := 0; i < refIters; i++ {
		mutate()
		t0 := time.Now()
		info, err := s.WriteFullCheckpoint(dir)
		fullNs += int64(time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		fullBytes += size(info.Path)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var deltaNs, deltaBytes int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mutate()
		b.StartTimer()
		t0 := time.Now()
		info, err := s.WriteCheckpoint(dir)
		deltaNs += int64(time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if info.Kind != "delta" {
			b.Fatalf("expected a delta cut, got kind %q", info.Kind)
		}
		b.StopTimer()
		deltaBytes += size(info.Path)
		b.StartTimer()
	}
	fullCutNs := float64(fullNs) / refIters
	fullSz := float64(fullBytes) / refIters
	deltaSz := float64(deltaBytes) / float64(b.N)
	b.ReportMetric(fullCutNs, "full_cut_ns")
	b.ReportMetric(fullSz, "full_bytes")
	b.ReportMetric(deltaSz, "delta_bytes/op")
	b.ReportMetric(fullSz/deltaSz, "bytes_x")
	b.ReportMetric(fullCutNs/(float64(deltaNs)/float64(b.N)), "time_x")
}

// BenchmarkFullPass measures the all-collector analysis pass used by the
// suite experiments (events/op).
func BenchmarkFullPass(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := analysis.RunBenchmark(bench.M88ksim(), analysis.Config{Events: benchEvents})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchEvents, "events/op")
}
