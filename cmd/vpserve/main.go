// Command vpserve runs the online value-prediction service: predictor
// state sharded by hash(pc), each shard a single goroutine with a bounded
// mailbox, serving a length-prefixed binary protocol over TCP plus JSON
// introspection over HTTP.
//
// Usage:
//
//	vpserve -addr :9747 -http :9748 -shards 8 -pred l,s2,fcm1,fcm2,fcm3
//
// With a checkpoint directory the server becomes durable: it writes
// periodic snapshots of every predictor table, a final one on graceful
// shutdown (SIGTERM/SIGINT), and can warm-restart from one so a restarted
// server predicts bit-identically to one that never stopped:
//
//	vpserve -checkpoint-dir /var/lib/vpserve -checkpoint-interval 30s
//	vpserve -checkpoint-dir /var/lib/vpserve -restore /var/lib/vpserve
//
// With -checkpoint-delta checkpoints become incremental: each cut stores
// only the state chunks dirtied since the previous one (the rest dedup
// to content-hash references into the chain) and every
// -checkpoint-full-every deltas a full checkpoint roots a fresh chain
// and sweeps the superseded files:
//
//	vpserve -checkpoint-dir /var/lib/vpserve -checkpoint-interval 30s \
//	        -checkpoint-delta -checkpoint-full-every 8
//
// -restore accepts a checkpoint file or a directory (the newest
// checkpoint of either generation wins); delta chains are resolved back
// through their parents automatically. Unless overridden, the shard
// count and predictor bank are taken from the snapshot. POST /snapshot
// on the HTTP endpoint triggers an immediate checkpoint (?full=1 forces
// a full cut). Drive it with the load generator:
//
//	vptrace capture -bench gcc -events 1000000 -o gcc.vpt
//	vptrace drive -addr localhost:9747 -clients 8 gcc.vpt
//
// and watch live accuracy at http://localhost:9748/stats.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

func main() {
	addr := flag.String("addr", ":9747", "binary-protocol listen address")
	httpAddr := flag.String("http", ":9748", "HTTP /stats + /healthz + /metrics + /events + /trace + /predictability + /snapshot + pprof listen address (empty = disabled)")
	shards := flag.Int("shards", 0, "predictor-state shards (0 = GOMAXPROCS, or the snapshot's layout with -restore)")
	preds := flag.String("pred", "l,s2,fcm1,fcm2,fcm3", "comma-separated predictor bank")
	mailbox := flag.Int("mailbox", 0, "per-shard mailbox depth (0 = default)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for predictor-state snapshots (enables checkpointing)")
	ckptEvery := flag.Duration("checkpoint-interval", 0, "write a checkpoint this often (0 = only on shutdown/trigger; needs -checkpoint-dir)")
	ckptDelta := flag.Bool("checkpoint-delta", false, "write incremental (delta-chain) checkpoints: only state chunks dirtied since the previous cut are stored, the rest dedup to content-hash references")
	ckptFullEvery := flag.Int("checkpoint-full-every", 0, "with -checkpoint-delta, force a full checkpoint after this many deltas and sweep the superseded chain (0 = 8)")
	restore := flag.String("restore", "", "warm-restart from this snapshot file, or the newest snapshot in this directory")
	logLevel := flag.String("log-level", "", "minimum log level (debug|info|warn|error; default $"+obs.LogLevelEnv+", then info)")
	predstatOn := flag.Bool("predstat", true, "track per-PC predictability analytics (GET /predictability, vp_pc_entropy_bits & friends)")
	traceSlow := flag.Duration("trace-slow", 0, "floor of the adaptive slow-request trace threshold (0 = 10ms); slower traced requests are retained in GET /trace")
	traceRetain := flag.Int("trace-retain", 0, "retained-trace flight-recorder capacity (0 = 64)")
	traceRing := flag.Int("trace-span-ring", 0, "provisional span ring size per shard lane (0 = 4096)")
	blockRate := flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate argument for /debug/pprof/block (0 = off)")
	mutexFrac := flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction argument for /debug/pprof/mutex (0 = off)")
	arenaStr := flag.String("arena", "", "predictor slab backing: heap (default) or mmap (large tables leave the GC-scanned heap)")
	list := flag.Bool("list", false, "list known predictors and exit")
	flag.Parse()

	if *list {
		for _, e := range core.KnownFactories() {
			shardable := "shardable"
			if !e.PCLocal {
				shardable = "single-shard only"
			}
			fmt.Printf("  %-8s %s (%s)\n", e.Name, e.Desc, shardable)
		}
		return
	}
	lvl, err := obs.ResolveLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := obs.NewLogger(os.Stderr, lvl)
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}

	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *ckptEvery > 0 && *ckptDir == "" {
		fatal(fmt.Errorf("-checkpoint-interval requires -checkpoint-dir"))
	}
	if *ckptDir != "" {
		// Fail fast on an unusable checkpoint directory: discovering it at
		// the final SIGTERM checkpoint would lose all learned state.
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(fmt.Errorf("checkpoint dir: %w", err))
		}
		probe, err := os.CreateTemp(*ckptDir, ".vpsnap-probe-*")
		if err != nil {
			fatal(fmt.Errorf("checkpoint dir is not writable: %w", err))
		}
		probe.Close()
		os.Remove(probe.Name())
	}

	// A restore dictates the shard layout and predictor bank unless the
	// operator explicitly overrides them (and then mismatches are errors).
	var snap *snapshot.Snapshot
	if *restore != "" {
		path := *restore
		if st, err := os.Stat(path); err == nil && st.IsDir() {
			var err error
			if path, err = snapshot.LatestAny(path); err != nil {
				fatal(err)
			}
		}
		var chain *snapshot.ChainInfo
		var err error
		if snap, chain, err = snapshot.ResolveChain(path); err != nil {
			fatal(err)
		}
		if !explicit["shards"] {
			*shards = snap.Meta.Shards
		}
		if !explicit["pred"] {
			*preds = strings.Join(snap.Meta.Predictors, ",")
		}
		log.Info("restoring snapshot", "id", snap.Meta.ID, "events", snap.Meta.Events,
			"shards", snap.Meta.Shards, "chain_depth", chain.Depth, "path", path)
	}

	facs, err := core.ParseFactories(*preds)
	if err != nil {
		fatal(err)
	}
	s, err := serve.New(serve.Config{
		Shards:           *shards,
		Predictors:       facs,
		MailboxDepth:     *mailbox,
		CheckpointDir:    *ckptDir,
		DeltaCheckpoints: *ckptDelta,
		FullEvery:        *ckptFullEvery,
		Logger:           log,
		PredstatDisabled: !*predstatOn,
		TraceSlowNs:      traceSlow.Nanoseconds(),
		TraceRetain:      *traceRetain,
		TraceSpanRing:    *traceRing,
		Arena:            *arenaStr,
	})
	if err != nil {
		fatal(err)
	}
	if snap != nil {
		if err := s.Restore(snap); err != nil {
			fatal(err)
		}
	}
	if err := s.Start(*addr, *httpAddr); err != nil {
		fatal(err)
	}
	log.Info("serving", "addr", s.Addr(), "predictors", strings.Join(s.Predictors(), ","), "shards", *shards)
	if h := s.HTTPAddr(); h != nil {
		log.Info("admin endpoints", "stats", fmt.Sprintf("http://%s/stats", h),
			"metrics", fmt.Sprintf("http://%s/metrics", h), "pprof", fmt.Sprintf("http://%s/debug/pprof/", h))
	}

	// Periodic checkpoints, stopped before shutdown so the final
	// checkpoint never races a ticking one.
	tickerDone := make(chan struct{})
	tickerStopped := make(chan struct{})
	if *ckptEvery > 0 {
		go func() {
			defer close(tickerStopped)
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-tickerDone:
					return
				case <-t.C:
					if _, err := s.WriteCheckpoint(*ckptDir); err != nil {
						// The server logs successful checkpoints itself.
						log.Error("checkpoint failed", "err", err)
					}
				}
			}
		}()
	} else {
		close(tickerStopped)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(tickerDone)
	<-tickerStopped

	// Graceful shutdown: stop accepting, drain every shard mailbox, then
	// write the final checkpoint (when configured) before exiting.
	snapStats := s.Stats()
	info, err := s.Shutdown(*ckptDir)
	if err != nil {
		fatal(err)
	}
	if info.Path != "" {
		log.Info("final checkpoint", "id", info.ID, "events", info.Events, "path", info.Path)
	}
	log.Info("served", "events", snapStats.Events, "unique_pcs", snapStats.UniquePCs)
	if lat := s.BatchLatency(); lat.Count > 0 {
		log.Info("shard batch latency",
			"batches", lat.Count,
			"p50", time.Duration(lat.Quantile(0.50)).Round(time.Microsecond),
			"p90", time.Duration(lat.Quantile(0.90)).Round(time.Microsecond),
			"p99", time.Duration(lat.Quantile(0.99)).Round(time.Microsecond),
			"max", time.Duration(lat.Max).Round(time.Microsecond))
	}
	for _, ps := range snapStats.Predictors {
		fmt.Fprintf(os.Stderr, "  %-8s %6.2f%%  (%d/%d)\n", ps.Name, ps.AccuracyPct, ps.Correct, ps.Total)
	}
	// A dead stats listener is an operational failure even when serving
	// kept going: report it in the exit status.
	if err := s.HTTPErr(); err != nil {
		fatal(fmt.Errorf("http stats listener died: %w", err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpserve:", err)
	os.Exit(1)
}
