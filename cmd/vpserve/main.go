// Command vpserve runs the online value-prediction service: predictor
// state sharded by hash(pc), each shard a single goroutine with a bounded
// mailbox, serving a length-prefixed binary protocol over TCP plus JSON
// introspection over HTTP.
//
// Usage:
//
//	vpserve -addr :9747 -http :9748 -shards 8 -pred l,s2,fcm1,fcm2,fcm3
//
// Drive it with the load generator:
//
//	vptrace capture -bench gcc -events 1000000 -o gcc.vpt
//	vptrace drive -addr localhost:9747 -clients 8 gcc.vpt
//
// and watch live accuracy at http://localhost:9748/stats.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9747", "binary-protocol listen address")
	httpAddr := flag.String("http", ":9748", "HTTP /stats + /healthz listen address (empty = disabled)")
	shards := flag.Int("shards", 0, "predictor-state shards (0 = GOMAXPROCS)")
	preds := flag.String("pred", "l,s2,fcm1,fcm2,fcm3", "comma-separated predictor bank")
	mailbox := flag.Int("mailbox", 0, "per-shard mailbox depth (0 = default)")
	list := flag.Bool("list", false, "list known predictors and exit")
	flag.Parse()

	if *list {
		for _, e := range core.KnownFactories() {
			shardable := "shardable"
			if !e.PCLocal {
				shardable = "single-shard only"
			}
			fmt.Printf("  %-8s %s (%s)\n", e.Name, e.Desc, shardable)
		}
		return
	}

	facs, err := core.ParseFactories(*preds)
	if err != nil {
		fatal(err)
	}
	s, err := serve.New(serve.Config{
		Shards:       *shards,
		Predictors:   facs,
		MailboxDepth: *mailbox,
	})
	if err != nil {
		fatal(err)
	}
	if err := s.Start(*addr, *httpAddr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vpserve: serving on %s (predictors %s)\n",
		s.Addr(), strings.Join(s.Predictors(), ","))
	if h := s.HTTPAddr(); h != nil {
		fmt.Fprintf(os.Stderr, "vpserve: stats on http://%s/stats\n", h)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	snap := s.Stats()
	if err := s.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vpserve: %d events over %d unique PCs\n", snap.Events, snap.UniquePCs)
	for _, ps := range snap.Predictors {
		fmt.Fprintf(os.Stderr, "  %-8s %6.2f%%  (%d/%d)\n", ps.Name, ps.AccuracyPct, ps.Correct, ps.Total)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpserve:", err)
	os.Exit(1)
}
