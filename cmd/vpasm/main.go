// Command vpasm assembles, disassembles and runs VISA-64 assembly files.
//
// Usage:
//
//	vpasm -run prog.s            # assemble and execute
//	vpasm -dis prog.s            # assemble and print the disassembly
//	vpasm -run -in data.txt prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/sim"
)

func main() {
	var (
		run    = flag.Bool("run", false, "execute the program")
		dis    = flag.Bool("dis", false, "print disassembly")
		inFile = flag.String("in", "", "input file (simulated stdin)")
		max    = flag.Uint64("max", 0, "dynamic instruction budget (0 = unlimited)")
		stats  = flag.Bool("stats", false, "print execution statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vpasm [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d instructions, %d data bytes, entry 0x%x\n",
		len(prog.Text), len(prog.Data), prog.Entry)

	if *dis {
		fmt.Print(asm.Disassemble(prog))
	}
	if !*run {
		return
	}
	var input []byte
	if *inFile != "" {
		input, err = os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
	}
	res, err := sim.Run(prog, input, sim.Config{MaxInstr: *max})
	if res != nil {
		os.Stdout.Write(res.Output)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "instructions=%d predicted=%d exit=%d halted=%v\n",
			res.Instructions, res.Events, res.ExitCode, res.Halted)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpasm:", err)
	os.Exit(1)
}
