// Command vpredict regenerates the tables and figures of "The
// Predictability of Data Values" (Sazeides & Smith, MICRO-30, 1997).
//
// Usage:
//
//	vpredict -list                 # show all experiments
//	vpredict -exp fig3             # one experiment
//	vpredict -exp all              # everything (one shared benchmark pass)
//	vpredict -exp fig3 -events 2000000 -bench compress,gcc
//	vpredict -exp all -workers 8   # benchmark-level parallelism
//	vpredict -exp all -workers 1   # serial reference path
//
// Events default to 500k predicted instructions per benchmark; raise for
// tighter numbers, lower for quick looks. The shared suite pass runs on
// internal/engine: benchmarks execute in parallel across -workers
// goroutines (default GOMAXPROCS) and each benchmark's value events fan
// out in -batch sized batches to one worker per predictor. Results are
// deterministic for a given (events, scale) configuration — the same
// bytes at every -workers/-batch setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		events   = flag.Uint64("events", 500_000, "max predicted instructions per benchmark run (0 = to completion)")
		scale    = flag.Int("scale", 1, "workload input scale factor")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default all seven)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel benchmark workers for the suite pass (1 = serial path)")
		batch    = flag.Int("batch", engine.DefaultBatchSize, "value events per delivery batch (engine path; -workers 1 uses per-event delivery)")
		list     = flag.Bool("list", false, "list experiments and exit")
		quiet    = flag.Bool("q", false, "suppress progress output")
		metrics  = flag.Bool("metrics", false, "dump engine instrumentation (Prometheus text) to stderr after the run")
		logLevel = flag.String("log-level", "", "minimum log level (debug|info|warn|error; default $"+obs.LogLevelEnv+", then info)")
		arenaStr = flag.String("arena", "", "predictor slab backing: heap (default) or mmap (large tables leave the GC-scanned heap)")
	)
	flag.Parse()

	if err := core.SetSlabArena(*arenaStr); err != nil {
		fmt.Fprintln(os.Stderr, "vpredict:", err)
		os.Exit(1)
	}
	lvl, err := obs.ResolveLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpredict:", err)
		os.Exit(1)
	}
	log := obs.NewLogger(os.Stderr, lvl)

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		Events:    *events,
		Scale:     *scale,
		Workers:   *workers,
		BatchSize: *batch,
	}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	if !*quiet {
		cfg.Progress = func(name string) {
			log.Info("running benchmark", "name", name)
		}
	}

	if *exp == "all" {
		err = experiments.RunAll(os.Stdout, cfg)
	} else {
		err = experiments.RunOne(os.Stdout, *exp, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpredict:", err)
		os.Exit(1)
	}
	if *metrics {
		// The engine's fan-out counters and worker-busy histograms live on
		// the process-wide default registry.
		obs.Default.WritePrometheus(os.Stderr)
		// Per-stage span totals from the fan-out tracer: the offline
		// counterpart of the serving tier's GET /trace stage summary.
		if stats := engine.TraceStageSummary(); len(stats) > 0 {
			fmt.Fprintln(os.Stderr, "# fan-out stage spans (stage spans total_ns)")
			for _, st := range stats {
				fmt.Fprintf(os.Stderr, "#   %-8s %10d %14d\n", st.Stage, st.Spans, st.Ns)
			}
		}
	}
}
