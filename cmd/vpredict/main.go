// Command vpredict regenerates the tables and figures of "The
// Predictability of Data Values" (Sazeides & Smith, MICRO-30, 1997).
//
// Usage:
//
//	vpredict -list                 # show all experiments
//	vpredict -exp fig3             # one experiment
//	vpredict -exp all              # everything (one shared benchmark pass)
//	vpredict -exp fig3 -events 2000000 -bench compress,gcc
//
// Events default to 500k predicted instructions per benchmark; raise for
// tighter numbers, lower for quick looks. Results are deterministic for a
// given (events, scale) configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		events  = flag.Uint64("events", 500_000, "max predicted instructions per benchmark run (0 = to completion)")
		scale   = flag.Int("scale", 1, "workload input scale factor")
		benches = flag.String("bench", "", "comma-separated benchmark subset (default all seven)")
		list    = flag.Bool("list", false, "list experiments and exit")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		Events: *events,
		Scale:  *scale,
	}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	if !*quiet {
		cfg.Progress = func(name string) {
			fmt.Fprintf(os.Stderr, "running %s...\n", name)
		}
	}

	var err error
	if *exp == "all" {
		err = experiments.RunAll(os.Stdout, cfg)
	} else {
		err = experiments.RunOne(os.Stdout, *exp, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpredict:", err)
		os.Exit(1)
	}
}
