// vpbench runs the predictor micro-benchmarks through `go test -bench`
// and appends a machine-readable JSON record (commit, timestamp, name,
// ns/op, B/op, allocs/op plus any custom metrics) to a history file, so
// successive PRs accrue the performance trajectory of the hot path in a
// stable artifact instead of scraping log text.
//
// It can also act as an allocation-regression gate: with
// -assert-zero-alloc, every matching benchmark must report 0 allocs/op
// or the run exits non-zero. CI points this at the steady-state FCM and
// bank batch benchmarks so a change that reintroduces per-event
// allocation fails loudly.
//
// Usage (from the module root):
//
//	go run ./cmd/vpbench                       # append to BENCH_core.json from BenchmarkPredict*
//	go run ./cmd/vpbench -bench 'BenchmarkServe' -benchtime 1x -out BENCH_serve.json
//	go run ./cmd/vpbench -assert-zero-alloc 'BenchmarkPredictFCM3Steady$'
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one benchmark line in a record.
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any additional per-op metrics the benchmark reported
	// (e.g. "events/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is one run's record: where and when it ran plus its results.
type Report struct {
	// Commit is the HEAD commit SHA at run time (empty outside a git
	// checkout) and Time the run's UTC timestamp — together they place
	// the record on the perf trajectory.
	Commit    string `json:"commit,omitempty"`
	Time      string `json:"time"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS and NumCPU pin the parallelism the numbers were measured
	// at — ns/op from hosts with different core counts are not comparable,
	// and the -N benchmark-name suffix alone does not record the machine.
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Package    string        `json:"package"`
	Bench      string        `json:"bench"`
	Benchtime  string        `json:"benchtime"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// History is the top-level JSON artifact: one record per vpbench run,
// appended in run order so the file accrues the trajectory across PRs.
type History struct {
	Schema  int      `json:"schema"`
	Entries []Report `json:"entries"`
}

// historySchema identifies the artifact layout; bumped if the shape of
// entries ever changes incompatibly.
const historySchema = 1

// benchLine matches one `go test -bench` result row:
//
//	BenchmarkPredictFCM3-8   1000000   918.4 ns/op   598 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseBenchOutput(out []byte) []BenchResult {
	var results []BenchResult
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{Name: m[1], Iterations: iters}
		// The tail is whitespace-separated (value, unit) pairs.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		results = append(results, r)
	}
	return results
}

// headCommit returns the checkout's HEAD SHA, best-effort: perf records
// remain useful (just unplaced) outside a git checkout.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadHistory reads an existing history file. A file written by the old
// single-report vpbench (a bare Report object, no "entries" key) is
// migrated into the first history entry, so trajectories started before
// the format change are not lost.
func loadHistory(path string) (History, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return History{Schema: historySchema}, nil
		}
		return History{}, err
	}
	var h History
	if err := json.Unmarshal(data, &h); err == nil && h.Entries != nil {
		h.Schema = historySchema
		return h, nil
	}
	var legacy Report
	if err := json.Unmarshal(data, &legacy); err == nil && len(legacy.Benchmarks) > 0 {
		return History{Schema: historySchema, Entries: []Report{legacy}}, nil
	}
	return History{}, fmt.Errorf("%s is neither a vpbench history nor a legacy report", path)
}

func main() {
	var (
		bench     = flag.String("bench", "BenchmarkPredict", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "100x", "benchtime passed to go test (e.g. 100x, 1s)")
		pkg       = flag.String("pkg", ".", "package to benchmark (module-root package holds the predictor benchmarks)")
		out       = flag.String("out", "BENCH_core.json", "history JSON path to append to ('' or '-' prints only this run to stdout)")
		count     = flag.Int("count", 1, "benchmark repetition count")
		assertRE  = flag.String("assert-zero-alloc", "", "regex of benchmarks that must report 0 allocs/op; non-zero exit on violation or no match")
	)
	flag.Parse()

	args := []string{
		"test", "-run=^$",
		"-bench=" + *bench,
		"-benchmem",
		"-benchtime=" + *benchtime,
		"-count=" + strconv.Itoa(*count),
		*pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	os.Stdout.Write(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpbench: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	report := Report{
		Commit:     headCommit(),
		Time:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Package:    *pkg,
		Bench:      *bench,
		Benchtime:  *benchtime,
		Benchmarks: parseBenchOutput(raw),
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "vpbench: no benchmarks matched %q\n", *bench)
		os.Exit(1)
	}

	if *out == "" || *out == "-" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		hist, err := loadHistory(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %v\n", err)
			os.Exit(1)
		}
		hist.Entries = append(hist.Entries, report)
		data, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vpbench: appended to %s (%d benchmarks, %d records)\n",
			*out, len(report.Benchmarks), len(hist.Entries))
	}

	if *assertRE != "" {
		re, err := regexp.Compile(*assertRE)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: bad -assert-zero-alloc regex: %v\n", err)
			os.Exit(1)
		}
		matched := false
		failed := false
		for _, r := range report.Benchmarks {
			if !re.MatchString(r.Name) {
				continue
			}
			matched = true
			if r.AllocsPerOp != 0 {
				fmt.Fprintf(os.Stderr, "vpbench: FAIL %s allocates %.1f allocs/op (want 0)\n", r.Name, r.AllocsPerOp)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "vpbench: ok   %s is allocation-free\n", r.Name)
			}
		}
		if !matched {
			fmt.Fprintf(os.Stderr, "vpbench: -assert-zero-alloc %q matched no benchmark\n", *assertRE)
			os.Exit(1)
		}
		if failed {
			os.Exit(1)
		}
	}
}
