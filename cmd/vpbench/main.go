// vpbench runs the predictor micro-benchmarks through `go test -bench`
// and appends a machine-readable JSON record (commit, timestamp, name,
// ns/op, B/op, allocs/op plus any custom metrics) to a history file, so
// successive PRs accrue the performance trajectory of the hot path in a
// stable artifact instead of scraping log text.
//
// It can also act as an allocation-regression gate: with
// -assert-zero-alloc, every matching benchmark must report 0 allocs/op
// or the run exits non-zero. CI points this at the steady-state FCM and
// bank batch benchmarks so a change that reintroduces per-event
// allocation fails loudly.
//
// Usage (from the module root):
//
//	go run ./cmd/vpbench                       # append to BENCH_core.json from BenchmarkPredict*
//	go run ./cmd/vpbench -bench 'BenchmarkServe' -benchtime 1x -out BENCH_serve.json
//	go run ./cmd/vpbench -assert-zero-alloc 'BenchmarkPredictFCM3Steady$'
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one benchmark line in a record.
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any additional per-op metrics the benchmark reported
	// (e.g. "events/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is one run's record: where and when it ran plus its results.
type Report struct {
	// Commit is the HEAD commit SHA at run time (empty outside a git
	// checkout) and Time the run's UTC timestamp — together they place
	// the record on the perf trajectory.
	Commit    string `json:"commit,omitempty"`
	Time      string `json:"time"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS and NumCPU pin the parallelism the numbers were measured
	// at — ns/op from hosts with different core counts are not comparable,
	// and the -N benchmark-name suffix alone does not record the machine.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Tags records the -tags build-tag set the benchmarks were compiled
	// with. Tagged builds run different code (e.g. the vpasmkernel asm
	// kernels), so records with different tags are not comparable.
	Tags       string        `json:"tags,omitempty"`
	Package    string        `json:"package"`
	Bench      string        `json:"bench"`
	Benchtime  string        `json:"benchtime"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// History is the top-level JSON artifact: one record per vpbench run,
// appended in run order so the file accrues the trajectory across PRs.
type History struct {
	Schema  int      `json:"schema"`
	Entries []Report `json:"entries"`
}

// historySchema identifies the artifact layout; bumped if the shape of
// entries ever changes incompatibly.
const historySchema = 1

// benchLine matches one `go test -bench` result row:
//
//	BenchmarkPredictFCM3-8   1000000   918.4 ns/op   598 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseBenchOutput(out []byte) []BenchResult {
	var results []BenchResult
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{Name: m[1], Iterations: iters}
		// The tail is whitespace-separated (value, unit) pairs.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		results = append(results, r)
	}
	return results
}

// bestPriorNs returns the fastest ns/op ever recorded for benchmark name
// across the prior history entries, considering only records measured in
// a comparable environment (same GOOS/GOARCH/GOMAXPROCS — ns/op across
// machines or parallelism settings are not comparable). ok is false when
// no prior record has the benchmark.
func bestPriorNs(prior []Report, cur Report, name string) (best float64, ok bool) {
	for _, rep := range prior {
		if rep.GOOS != cur.GOOS || rep.GOARCH != cur.GOARCH || rep.GOMAXPROCS != cur.GOMAXPROCS ||
			rep.Tags != cur.Tags {
			continue
		}
		for _, b := range rep.Benchmarks {
			if b.Name != name || b.NsPerOp <= 0 {
				continue
			}
			if !ok || b.NsPerOp < best {
				best, ok = b.NsPerOp, true
			}
		}
	}
	return best, ok
}

// ratchetCheck is the ns/op regression gate: every benchmark in cur
// matching re must stay within pct percent of the best comparable prior
// record. Benchmarks with no history pass with a note (the first run
// seeds the ratchet). Returns the number of regressions and whether re
// matched any benchmark at all.
func ratchetCheck(prior []Report, cur Report, re *regexp.Regexp, pct float64, w io.Writer) (violations int, matched bool) {
	for _, b := range cur.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched = true
		best, ok := bestPriorNs(prior, cur, b.Name)
		if !ok {
			fmt.Fprintf(w, "vpbench: ratchet %s: no comparable history, seeding at %.1f ns/op\n", b.Name, b.NsPerOp)
			continue
		}
		limit := best * (1 + pct/100)
		if b.NsPerOp > limit {
			fmt.Fprintf(w, "vpbench: FAIL ratchet %s: %.1f ns/op exceeds best %.1f by more than %.0f%% (limit %.1f)\n",
				b.Name, b.NsPerOp, best, pct, limit)
			violations++
		} else {
			fmt.Fprintf(w, "vpbench: ok   ratchet %s: %.1f ns/op vs best %.1f (limit %.1f)\n",
				b.Name, b.NsPerOp, best, limit)
		}
	}
	return violations, matched
}

// headCommit returns the checkout's HEAD SHA, best-effort: perf records
// remain useful (just unplaced) outside a git checkout.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadHistory reads an existing history file. A file written by the old
// single-report vpbench (a bare Report object, no "entries" key) is
// migrated into the first history entry, so trajectories started before
// the format change are not lost.
func loadHistory(path string) (History, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return History{Schema: historySchema}, nil
		}
		return History{}, err
	}
	var h History
	if err := json.Unmarshal(data, &h); err == nil && h.Entries != nil {
		h.Schema = historySchema
		return h, nil
	}
	var legacy Report
	if err := json.Unmarshal(data, &legacy); err == nil && len(legacy.Benchmarks) > 0 {
		return History{Schema: historySchema, Entries: []Report{legacy}}, nil
	}
	return History{}, fmt.Errorf("%s is neither a vpbench history nor a legacy report", path)
}

func main() {
	var (
		bench      = flag.String("bench", "BenchmarkPredict", "benchmark regex passed to go test -bench")
		benchtime  = flag.String("benchtime", "100x", "benchtime passed to go test (e.g. 100x, 1s)")
		pkg        = flag.String("pkg", ".", "package to benchmark (module-root package holds the predictor benchmarks)")
		out        = flag.String("out", "BENCH_core.json", "history JSON path to append to ('' or '-' prints only this run to stdout)")
		count      = flag.Int("count", 1, "benchmark repetition count")
		assertRE   = flag.String("assert-zero-alloc", "", "regex of benchmarks that must report 0 allocs/op; non-zero exit on violation or no match")
		ratchetRE  = flag.String("ratchet", "", "regex of benchmarks whose ns/op must stay within -ratchet-pct of the best comparable history record; non-zero exit on regression (requires a history -out)")
		ratchetPct = flag.Float64("ratchet-pct", 15, "allowed ns/op regression over the historical best, in percent")
		tags       = flag.String("tags", "", "build tags passed to go test (e.g. vpasmkernel); recorded in the report and part of ratchet comparability")
	)
	flag.Parse()
	if *ratchetRE != "" && (*out == "" || *out == "-") {
		fmt.Fprintln(os.Stderr, "vpbench: -ratchet requires a history file (-out)")
		os.Exit(1)
	}

	args := []string{
		"test", "-run=^$",
		"-bench=" + *bench,
		"-benchmem",
		"-benchtime=" + *benchtime,
		"-count=" + strconv.Itoa(*count),
	}
	if *tags != "" {
		args = append(args, "-tags="+*tags)
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	os.Stdout.Write(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpbench: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	report := Report{
		Commit:     headCommit(),
		Time:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Tags:       *tags,
		Package:    *pkg,
		Bench:      *bench,
		Benchtime:  *benchtime,
		Benchmarks: parseBenchOutput(raw),
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "vpbench: no benchmarks matched %q\n", *bench)
		os.Exit(1)
	}

	var prior []Report
	if *out == "" || *out == "-" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		hist, err := loadHistory(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %v\n", err)
			os.Exit(1)
		}
		prior = append(prior, hist.Entries...)
		hist.Entries = append(hist.Entries, report)
		data, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vpbench: appended to %s (%d benchmarks, %d records)\n",
			*out, len(report.Benchmarks), len(hist.Entries))
	}

	if *assertRE != "" {
		re, err := regexp.Compile(*assertRE)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: bad -assert-zero-alloc regex: %v\n", err)
			os.Exit(1)
		}
		matched := false
		failed := false
		for _, r := range report.Benchmarks {
			if !re.MatchString(r.Name) {
				continue
			}
			matched = true
			if r.AllocsPerOp != 0 {
				fmt.Fprintf(os.Stderr, "vpbench: FAIL %s allocates %.1f allocs/op (want 0)\n", r.Name, r.AllocsPerOp)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "vpbench: ok   %s is allocation-free\n", r.Name)
			}
		}
		if !matched {
			fmt.Fprintf(os.Stderr, "vpbench: -assert-zero-alloc %q matched no benchmark\n", *assertRE)
			os.Exit(1)
		}
		if failed {
			os.Exit(1)
		}
	}

	if *ratchetRE != "" {
		re, err := regexp.Compile(*ratchetRE)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: bad -ratchet regex: %v\n", err)
			os.Exit(1)
		}
		violations, matched := ratchetCheck(prior, report, re, *ratchetPct, os.Stderr)
		if !matched {
			fmt.Fprintf(os.Stderr, "vpbench: -ratchet %q matched no benchmark\n", *ratchetRE)
			os.Exit(1)
		}
		if violations > 0 {
			os.Exit(1)
		}
	}
}
