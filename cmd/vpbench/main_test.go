package main

import (
	"io"
	"regexp"
	"strings"
	"testing"
)

func rep(gomaxprocs int, benches ...BenchResult) Report {
	return Report{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: gomaxprocs, Benchmarks: benches}
}

func TestRatchetCheck(t *testing.T) {
	re := regexp.MustCompile(`^BenchmarkHot`)
	prior := []Report{
		rep(8, BenchResult{Name: "BenchmarkHot", NsPerOp: 100}),
		rep(8, BenchResult{Name: "BenchmarkHot", NsPerOp: 120}),
		// Different parallelism: not comparable, must be ignored even
		// though it is faster.
		rep(4, BenchResult{Name: "BenchmarkHot", NsPerOp: 10}),
	}

	// Within 15% of the best (100): passes.
	v, matched := ratchetCheck(prior, rep(8, BenchResult{Name: "BenchmarkHot", NsPerOp: 114}), re, 15, io.Discard)
	if v != 0 || !matched {
		t.Fatalf("within limit: violations=%d matched=%v, want 0 true", v, matched)
	}

	// Beyond 15% of the best: fails.
	var buf strings.Builder
	v, _ = ratchetCheck(prior, rep(8, BenchResult{Name: "BenchmarkHot", NsPerOp: 116}), re, 15, &buf)
	if v != 1 {
		t.Fatalf("regression: violations=%d, want 1\n%s", v, buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL ratchet BenchmarkHot") {
		t.Fatalf("missing FAIL line:\n%s", buf.String())
	}

	// No comparable history: seeds, passes.
	buf.Reset()
	v, matched = ratchetCheck(nil, rep(8, BenchResult{Name: "BenchmarkHotNew", NsPerOp: 500}), re, 15, &buf)
	if v != 0 || !matched {
		t.Fatalf("seed: violations=%d matched=%v, want 0 true", v, matched)
	}
	if !strings.Contains(buf.String(), "seeding") {
		t.Fatalf("missing seeding note:\n%s", buf.String())
	}

	// Regex matching nothing reports matched=false.
	if _, matched = ratchetCheck(prior, rep(8, BenchResult{Name: "BenchmarkCold", NsPerOp: 1}), re, 15, io.Discard); matched {
		t.Fatal("matched should be false for non-matching regex")
	}
}

func TestBestPriorNsZeroIgnored(t *testing.T) {
	prior := []Report{rep(8, BenchResult{Name: "B", NsPerOp: 0})}
	if _, ok := bestPriorNs(prior, rep(8), "B"); ok {
		t.Fatal("zero ns/op records must not seed the ratchet")
	}
}
