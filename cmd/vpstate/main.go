// Command vpstate inspects predictor-state snapshots offline: the
// durable checkpoints vpserve writes (see internal/snapshot) opened,
// verified and summarized without a running server.
//
// Usage:
//
//	vpstate info [-top N] FILE         metadata, per-predictor occupancy and accuracy
//	vpstate diff [-top N] OLD NEW      drift between two snapshots of one server
//	vpstate export [-pcs] FILE         machine-readable JSON dump
//
// info reconstructs every predictor from its state blob (so it also
// end-to-end verifies that the snapshot restores) and reports table
// occupancy: static PCs, total entries, encoded and approximate resident
// bytes, and optionally the hottest PCs by entry count. diff shows how
// state evolved between two checkpoints: events served, accuracy drift,
// table growth, and which PCs appeared, vanished or changed. export
// emits everything as JSON for scripting, with -pcs including the full
// per-PC entry counts.
//
// All three commands accept either generation of checkpoint: a v1
// .vpsnap snapshot, or a v2 .vpdelta delta whose parent chain is
// resolved from the same directory (and each link CRC-verified). For a
// delta, info additionally reports the parent ID, chain depth, file
// count, and the tip's dirty ratio — how many chunks were stored inline
// versus deduplicated to content-hash references.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "info":
		info(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "export":
		export(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  vpstate info [-top N] FILE
  vpstate diff [-top N] OLD NEW
  vpstate export [-pcs] FILE
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpstate:", err)
	os.Exit(1)
}

// predAgg is one predictor's state aggregated across shards, rebuilt
// from the snapshot blobs through the registry.
type predAgg struct {
	Name         string         `json:"name"`
	Correct      uint64         `json:"correct"`
	Total        uint64         `json:"total"`
	AccuracyPct  float64        `json:"accuracy_pct"`
	StateBytes   int            `json:"state_bytes"`
	StaticPCs    int            `json:"static_pcs"`
	TableEntries int            `json:"table_entries"`
	PerPC        map[uint64]int `json:"-"` // nil when the predictor aliases across PCs
}

// aggregate decodes every predictor blob in the snapshot. Each blob is
// loaded into a fresh registry instance, so a snapshot that prints is a
// snapshot that restores.
func aggregate(snap *snapshot.Snapshot) ([]*predAgg, error) {
	aggs := make([]*predAgg, len(snap.Meta.Predictors))
	for i, name := range snap.Meta.Predictors {
		aggs[i] = &predAgg{Name: name}
	}
	for _, sh := range snap.Shards {
		for i, ps := range sh.Preds {
			agg := aggs[i]
			agg.Correct += ps.Correct
			agg.Total += ps.Total
			agg.StateBytes += len(ps.State)
			fac, ok := core.FactoryByName(agg.Name)
			if !ok {
				return nil, fmt.Errorf("predictor %q not in local registry", agg.Name)
			}
			p := fac.New()
			stateful, ok := p.(core.Stateful)
			if !ok {
				return nil, fmt.Errorf("predictor %q is not Stateful", agg.Name)
			}
			if err := stateful.LoadState(bytes.NewReader(ps.State)); err != nil {
				return nil, fmt.Errorf("shard %d predictor %q: %w", sh.Shard, agg.Name, err)
			}
			if sized, ok := p.(core.Sized); ok {
				static, total := sized.TableEntries()
				agg.StaticPCs += static
				agg.TableEntries += total
			}
			if pp, ok := p.(core.PerPC); ok {
				if agg.PerPC == nil {
					agg.PerPC = make(map[uint64]int)
				}
				for pc, n := range pp.PCEntries() {
					agg.PerPC[pc] += n // shards own disjoint PCs
				}
			}
		}
	}
	for _, agg := range aggs {
		if agg.Total > 0 {
			agg.AccuracyPct = 100 * float64(agg.Correct) / float64(agg.Total)
		}
	}
	return aggs, nil
}

// readSnap opens a checkpoint of either generation: a v1 snapshot as-is,
// a v2 delta with its parent chain resolved from the same directory.
func readSnap(path string) (*snapshot.Snapshot, *snapshot.ChainInfo) {
	snap, chain, err := snapshot.ResolveChain(path)
	if err != nil {
		fatal(err)
	}
	return snap, chain
}

func printMeta(snap *snapshot.Snapshot, chain *snapshot.ChainInfo) {
	m := snap.Meta
	fmt.Printf("snapshot:   %s (format v%d)\n", m.ID, m.FormatVersion)
	fmt.Printf("created:    %s\n", time.Unix(0, m.CreatedUnixNano).UTC().Format(time.RFC3339Nano))
	fmt.Printf("events:     %d\n", m.Events)
	fmt.Printf("shards:     %d\n", m.Shards)
	var pcs int
	for _, sh := range snap.Shards {
		pcs += len(sh.PCs)
	}
	fmt.Printf("unique PCs: %d\n", pcs)
	fmt.Printf("state:      %d bytes encoded\n", snap.StateBytes())
	printChain(chain)
}

// printChain summarizes a delta chain: kind, parentage, depth, and the
// tip's chunk table split into dirty (inline) and clean (referenced)
// chunks. Prints nothing for a v1 snapshot.
func printChain(chain *snapshot.ChainInfo) {
	if chain == nil || chain.Tip == nil {
		return
	}
	tip := chain.Tip
	kind := "full"
	if tip.Meta.ParentID != "" {
		kind = "delta"
		fmt.Printf("kind:       %s (parent %s)\n", kind, tip.Meta.ParentID)
	} else {
		fmt.Printf("kind:       %s\n", kind)
	}
	fmt.Printf("chain:      depth %d, %d file(s)\n", chain.Depth, len(chain.Files))
	st := tip.Stats()
	total := st.Inline + st.Refs
	if total > 0 {
		fmt.Printf("chunks:     %d dirty (%d bytes inline), %d clean refs (%d bytes deduped), %.1f%% dirty\n",
			st.Inline, st.InlineBytes, st.Refs, st.RefBytes, 100*float64(st.Inline)/float64(total))
	}
}

// chainSuffix is the compact chain annotation diff appends to each
// side's header line; empty for a v1 snapshot.
func chainSuffix(chain *snapshot.ChainInfo) string {
	if chain == nil || chain.Tip == nil {
		return ""
	}
	if chain.Tip.Meta.ParentID == "" {
		return "  [full]"
	}
	return fmt.Sprintf("  [delta chain: depth %d, %d files, parent %s]",
		chain.Depth, len(chain.Files), chain.Tip.Meta.ParentID)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	top := fs.Int("top", 0, "also list the N PCs holding the most table entries")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	snap, chain := readSnap(fs.Arg(0))
	printMeta(snap, chain)
	aggs, err := aggregate(snap)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-8s %9s %12s %12s %12s %12s\n", "pred", "acc%", "correct", "static-pcs", "entries", "bytes")
	for _, a := range aggs {
		fmt.Printf("%-8s %8.2f%% %12d %12d %12d %12d\n",
			a.Name, a.AccuracyPct, a.Correct, a.StaticPCs, a.TableEntries, a.StateBytes)
	}
	fmt.Printf("\nper shard:\n")
	for _, sh := range snap.Shards {
		var b int
		for _, ps := range sh.Preds {
			b += len(ps.State)
		}
		fmt.Printf("  shard %-3d %12d events %10d pcs %12d bytes\n", sh.Shard, sh.Events, len(sh.PCs), b)
	}
	if *top > 0 {
		byPC := make(map[uint64]int)
		for _, a := range aggs {
			for pc, n := range a.PerPC {
				byPC[pc] += n
			}
		}
		fmt.Printf("\ntop %d PCs by table entries (all predictors):\n", *top)
		for _, pe := range topEntries(byPC, *top) {
			fmt.Printf("  %#10x %8d entries\n", pe.pc, pe.n)
		}
	}
}

type pcEntry struct {
	pc uint64
	n  int
}

// topEntries returns the n largest per-PC counts, ties broken by PC.
func topEntries(m map[uint64]int, n int) []pcEntry {
	out := make([]pcEntry, 0, len(m))
	for pc, c := range m {
		out = append(out, pcEntry{pc, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].pc < out[j].pc
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	top := fs.Int("top", 10, "list the N PCs with the largest entry-count drift")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	oldSnap, oldChain := readSnap(fs.Arg(0))
	newSnap, newChain := readSnap(fs.Arg(1))
	fmt.Printf("old: %s  %12d events  (%s)%s\n", oldSnap.Meta.ID, oldSnap.Meta.Events,
		time.Unix(0, oldSnap.Meta.CreatedUnixNano).UTC().Format(time.RFC3339), chainSuffix(oldChain))
	fmt.Printf("new: %s  %12d events  (%s)%s\n", newSnap.Meta.ID, newSnap.Meta.Events,
		time.Unix(0, newSnap.Meta.CreatedUnixNano).UTC().Format(time.RFC3339), chainSuffix(newChain))
	fmt.Printf("     %+d events\n\n", int64(newSnap.Meta.Events)-int64(oldSnap.Meta.Events))

	oldAggs, err := aggregate(oldSnap)
	if err != nil {
		fatal(err)
	}
	newAggs, err := aggregate(newSnap)
	if err != nil {
		fatal(err)
	}
	oldBy := make(map[string]*predAgg, len(oldAggs))
	for _, a := range oldAggs {
		oldBy[a.Name] = a
	}
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "pred", "acc%", "Δcorrect", "Δentries", "Δbytes")
	for _, nw := range newAggs {
		od := oldBy[nw.Name]
		if od == nil {
			fmt.Printf("%-8s (only in new snapshot)\n", nw.Name)
			continue
		}
		// Accuracy over just the delta window, when events advanced.
		accStr := "    --"
		if nw.Total > od.Total {
			accStr = fmt.Sprintf("%9.2f%%", 100*float64(nw.Correct-od.Correct)/float64(nw.Total-od.Total))
		}
		fmt.Printf("%-8s %10s %+12d %+12d %+12d\n", nw.Name, accStr,
			int64(nw.Correct)-int64(od.Correct),
			int64(nw.TableEntries)-int64(od.TableEntries),
			int64(nw.StateBytes)-int64(od.StateBytes))
	}
	for _, a := range oldAggs {
		found := false
		for _, nw := range newAggs {
			if nw.Name == a.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-8s (only in old snapshot)\n", a.Name)
		}
	}

	// Per-PC drift across the whole bank.
	oldPC := make(map[uint64]int)
	newPC := make(map[uint64]int)
	for _, a := range oldAggs {
		for pc, n := range a.PerPC {
			oldPC[pc] += n
		}
	}
	for _, a := range newAggs {
		for pc, n := range a.PerPC {
			newPC[pc] += n
		}
	}
	added, removed, changed := 0, 0, 0
	drift := make(map[uint64]int)
	for pc, n := range newPC {
		o, ok := oldPC[pc]
		switch {
		case !ok:
			added++
			drift[pc] = n
		case o != n:
			changed++
			drift[pc] = n - o
		}
	}
	for pc, o := range oldPC {
		if _, ok := newPC[pc]; !ok {
			removed++
			drift[pc] = -o
		}
	}
	fmt.Printf("\nper-PC drift: %d new PCs, %d grown/shrunk, %d gone (of %d)\n",
		added, changed, removed, len(newPC))
	if *top > 0 && len(drift) > 0 {
		abs := make(map[uint64]int, len(drift))
		for pc, d := range drift {
			if d < 0 {
				abs[pc] = -d
			} else {
				abs[pc] = d
			}
		}
		fmt.Printf("largest movers:\n")
		for _, pe := range topEntries(abs, *top) {
			fmt.Printf("  %#10x %+8d entries (now %d)\n", pe.pc, drift[pe.pc], newPC[pe.pc])
		}
	}
}

// exportShard is the JSON shape of one shard in export output.
type exportShard struct {
	Shard      int    `json:"shard"`
	Events     uint64 `json:"events"`
	UniquePCs  int    `json:"unique_pcs"`
	StateBytes int    `json:"state_bytes"`
}

func export(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	withPCs := fs.Bool("pcs", false, "include per-PC entry counts (can be large)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	snap, chain := readSnap(fs.Arg(0))
	aggs, err := aggregate(snap)
	if err != nil {
		fatal(err)
	}

	type exportPred struct {
		*predAgg
		PCs map[string]int `json:"pc_entries,omitempty"`
	}
	type exportChain struct {
		ParentID     string `json:"parent_id,omitempty"`
		Depth        int    `json:"depth"`
		Files        int    `json:"files"`
		DirtyChunks  int    `json:"dirty_chunks"`
		DirtyBytes   int    `json:"dirty_bytes"`
		CleanRefs    int    `json:"clean_refs"`
		DedupedBytes int    `json:"deduped_bytes"`
	}
	out := struct {
		Meta       snapshot.Meta `json:"meta"`
		Created    string        `json:"created"`
		Chain      *exportChain  `json:"chain,omitempty"`
		Shards     []exportShard `json:"shards"`
		Predictors []exportPred  `json:"predictors"`
	}{
		Meta:    snap.Meta,
		Created: time.Unix(0, snap.Meta.CreatedUnixNano).UTC().Format(time.RFC3339Nano),
	}
	if chain != nil && chain.Tip != nil {
		st := chain.Tip.Stats()
		out.Chain = &exportChain{
			ParentID:     chain.Tip.Meta.ParentID,
			Depth:        chain.Depth,
			Files:        len(chain.Files),
			DirtyChunks:  st.Inline,
			DirtyBytes:   st.InlineBytes,
			CleanRefs:    st.Refs,
			DedupedBytes: st.RefBytes,
		}
	}
	for _, sh := range snap.Shards {
		es := exportShard{Shard: sh.Shard, Events: sh.Events, UniquePCs: len(sh.PCs)}
		for _, ps := range sh.Preds {
			es.StateBytes += len(ps.State)
		}
		out.Shards = append(out.Shards, es)
	}
	for _, a := range aggs {
		ep := exportPred{predAgg: a}
		if *withPCs && a.PerPC != nil {
			ep.PCs = make(map[string]int, len(a.PerPC))
			for pc, n := range a.PerPC {
				ep.PCs[fmt.Sprintf("%#x", pc)] = n
			}
		}
		out.Predictors = append(out.Predictors, ep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}
