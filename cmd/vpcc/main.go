// Command vpcc compiles and optionally runs MiniC programs.
//
// Usage:
//
//	vpcc prog.mc                 # compile to prog.s
//	vpcc -O 2 -run prog.mc       # compile and execute on the simulator
//	vpcc -run -in input.txt prog.mc
//	vpcc -ir prog.mc             # dump the optimizer's final IR
//
// The MiniC language and its -O0..-O3 levels are documented in
// internal/minic; vpcc is the gcc stand-in of the reproduction.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/minic"
	"repro/internal/sim"
)

func main() {
	var (
		opt    = flag.Int("O", 2, "optimization level 0..3")
		run    = flag.Bool("run", false, "execute after compiling")
		inFile = flag.String("in", "", "input file for -run (stdin of the simulated program)")
		out    = flag.String("o", "", "output .s path (default: source with .s suffix)")
		dumpIR = flag.Bool("ir", false, "dump final IR to stderr")
		stats  = flag.Bool("stats", false, "print execution statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vpcc [flags] prog.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	srcPath := flag.Arg(0)
	src, err := os.ReadFile(srcPath)
	if err != nil {
		fatal(err)
	}

	opts := minic.Options{Opt: *opt}
	if *dumpIR {
		opts.DumpIR = func(f *minic.IRFunc) { fmt.Fprint(os.Stderr, f.Dump()) }
	}
	asmText, err := minic.Compile([]minic.Source{{Name: srcPath, Text: string(src)}}, opts)
	if err != nil {
		fatal(err)
	}

	if !*run {
		dst := *out
		if dst == "" {
			dst = strings.TrimSuffix(srcPath, ".mc") + ".s"
		}
		if err := os.WriteFile(dst, []byte(asmText), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d lines)\n", dst, strings.Count(asmText, "\n"))
		return
	}

	prog, err := asm.Assemble(srcPath, asmText)
	if err != nil {
		fatal(err)
	}
	var input []byte
	if *inFile != "" {
		input, err = os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
	}
	res, err := sim.Run(prog, input, sim.Config{})
	if res != nil {
		os.Stdout.Write(res.Output)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "instructions=%d predicted=%d exit=%d\n",
			res.Instructions, res.Events, res.ExitCode)
	}
	os.Exit(int(res.ExitCode & 0x7F))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpcc:", err)
	os.Exit(1)
}
