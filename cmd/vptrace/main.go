// Command vptrace captures, inspects and replays value traces.
//
// Usage:
//
//	vptrace capture -bench gcc -events 1000000 -o gcc.vpt
//	vptrace info gcc.vpt
//	vptrace replay -pred fcm3,s2,l gcc.vpt
//
// Capture once, then replay the identical event stream against any
// predictor configuration — the decoupling the paper's trace-driven
// methodology relies on.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "capture":
		capture(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vptrace capture -bench NAME [-opt N] [-scale N] [-events N] -o FILE
  vptrace info FILE
  vptrace replay [-pred l,s2,fcm1,fcm2,fcm3] FILE`)
	os.Exit(2)
}

func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	name := fs.String("bench", "", "workload name (compress, gcc, go, ijpeg, m88ksim, perl, xlisp)")
	opt := fs.Int("opt", bench.RefOpt, "compiler optimization level")
	scale := fs.Int("scale", 1, "input scale factor")
	events := fs.Uint64("events", 0, "event cap (0 = run to completion)")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	w := bench.ByName(*name)
	if w == nil || *out == "" {
		usage()
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f, trace.Header{Benchmark: *name, Opt: *opt, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	_, err = w.Run(bench.RunConfig{
		Opt:       *opt,
		Scale:     *scale,
		MaxEvents: *events,
		OnValue: func(ev sim.ValueEvent) {
			if err := tw.Write(trace.FromSim(ev)); err != nil {
				fatal(err)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	if err := tw.Close(); err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Fprintf(os.Stderr, "captured %d events to %s (%d bytes)\n", tw.Count(), *out, st.Size())
}

func openTrace(path string) (*os.File, *trace.Reader) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	return f, r
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, r := openTrace(args[0])
	defer f.Close()
	var total uint64
	var perCat [isa.NumCategories]uint64
	pcs := make(map[uint64]bool)
	err := r.ForEach(func(ev trace.Event) error {
		total++
		perCat[ev.Cat]++
		pcs[ev.PC] = true
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark: %s (opt %d, scale %d)\n", r.Header.Benchmark, r.Header.Opt, r.Header.Scale)
	fmt.Printf("events:    %d from %d static instructions\n", total, len(pcs))
	for _, cat := range isa.PredictedCategories() {
		if perCat[cat] > 0 {
			fmt.Printf("  %-8s %10d  (%.1f%%)\n", cat, perCat[cat], 100*float64(perCat[cat])/float64(total))
		}
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	preds := fs.String("pred", "l,s2,fcm1,fcm2,fcm3", "comma-separated predictors")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, r := openTrace(fs.Arg(0))
	defer f.Close()

	known := map[string]func() core.Predictor{
		"l":     func() core.Predictor { return core.NewLastValue() },
		"lc":    func() core.Predictor { return core.NewLastValueCounter(3, 1) },
		"s":     func() core.Predictor { return core.NewStrideSimple() },
		"s2":    func() core.Predictor { return core.NewStride2Delta() },
		"sc":    func() core.Predictor { return core.NewStrideCounter(3, 1) },
		"fcm1":  func() core.Predictor { return core.NewFCM(1) },
		"fcm2":  func() core.Predictor { return core.NewFCM(2) },
		"fcm3":  func() core.Predictor { return core.NewFCM(3) },
		"hyb":   func() core.Predictor { return core.NewStrideFCMHybrid(3) },
		"bfcm3": func() core.Predictor { return core.NewBoundedFCM(3, 12, 18) },
	}
	var ps []core.Predictor
	var accs []*core.Accuracy
	for _, name := range strings.Split(*preds, ",") {
		mk, ok := known[strings.TrimSpace(name)]
		if !ok {
			fatal(fmt.Errorf("unknown predictor %q", name))
		}
		ps = append(ps, mk())
		accs = append(accs, &core.Accuracy{})
	}
	var total uint64
	err := r.ForEach(func(ev trace.Event) error {
		total++
		for i, p := range ps {
			pred, ok := p.Predict(ev.PC)
			accs[i].Observe(ok && pred == ev.Value)
			p.Update(ev.PC, ev.Value)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d events\n", r.Header.Benchmark, total)
	for i, p := range ps {
		fmt.Printf("  %-6s %6.2f%%\n", p.Name(), accs[i].Percent())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vptrace:", err)
	os.Exit(1)
}
