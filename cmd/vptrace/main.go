// Command vptrace captures, inspects, replays and serves value traces.
//
// Usage:
//
//	vptrace capture -bench gcc -events 1000000 -o gcc.vpt
//	vptrace info gcc.vpt
//	vptrace replay -pred fcm3,s2,l gcc.vpt
//	vptrace analyze -top 10 gcc.vpt
//	vptrace drive -addr localhost:9747 -clients 8 gcc.vpt
//	vptrace drive -addr localhost:9747 -bench compress -events 500000
//
// Capture once, then replay the identical event stream against any
// predictor configuration — the decoupling the paper's trace-driven
// methodology relies on. analyze replays with a predictability tracker
// attached and reports the paper-style per-class accuracy-vs-ceiling
// tables plus the hardest and easiest PCs. drive replays a trace (or a
// live benchmark simulation) against a running vpserve as load
// generation, and with -verify checks the server's tallies against an
// offline replay of the same stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/predstat"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "capture":
		capture(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "analyze":
		analyze(os.Args[2:])
	case "drive":
		drive(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  vptrace capture -bench NAME [-opt N] [-scale N] [-events N] -o FILE
  vptrace info FILE
  vptrace replay [-pred %[1]s] FILE
  vptrace analyze [-pred %[1]s] [-top N] [-min-events N] [-log-level LVL] FILE
  vptrace drive -addr HOST:PORT [-clients N] [-batch N] [-verify [-warm SNAP]] FILE
  vptrace drive -addr HOST:PORT -bench NAME [-opt N] [-scale N] [-events N]

known predictors: %[2]s
`, defaultPreds, strings.Join(core.KnownNames(), ","))
	os.Exit(2)
}

const defaultPreds = "l,s2,fcm1,fcm2,fcm3"

func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	name := fs.String("bench", "", "workload name (compress, gcc, go, ijpeg, m88ksim, perl, xlisp)")
	opt := fs.Int("opt", bench.RefOpt, "compiler optimization level")
	scale := fs.Int("scale", 1, "input scale factor")
	events := fs.Uint64("events", 0, "event cap (0 = run to completion)")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	w := bench.ByName(*name)
	if w == nil || *out == "" {
		usage()
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	tw, err := trace.NewWriter(f, trace.Header{Benchmark: *name, Opt: *opt, Scale: *scale})
	if err != nil {
		f.Close()
		fatal(err)
	}
	_, err = w.Run(bench.RunConfig{
		Opt:       *opt,
		Scale:     *scale,
		MaxEvents: *events,
		OnValues: func(evs []sim.ValueEvent) {
			for _, ev := range evs {
				if err := tw.Write(trace.FromSim(ev)); err != nil {
					fatal(err)
				}
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	if err := tw.Close(); err != nil {
		fatal(err)
	}
	// Close errors are real data loss on buffered filesystems — check.
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "captured %d events to %s (%d bytes)\n", tw.Count(), *out, st.Size())
}

func openTrace(path string) (*os.File, *trace.Reader) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	return f, r
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, r := openTrace(args[0])
	defer f.Close()
	var total uint64
	var perCat [isa.NumCategories]uint64
	pcs := make(map[uint64]bool)
	err := r.ForEachBatch(0, func(evs []trace.Event) error {
		for _, ev := range evs {
			total++
			perCat[ev.Cat]++
			pcs[ev.PC] = true
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark: %s (opt %d, scale %d)\n", r.Header.Benchmark, r.Header.Opt, r.Header.Scale)
	fmt.Printf("events:    %d from %d static instructions\n", total, len(pcs))
	for _, cat := range isa.PredictedCategories() {
		if perCat[cat] > 0 {
			fmt.Printf("  %-8s %10d  (%.1f%%)\n", cat, perCat[cat], 100*float64(perCat[cat])/float64(total))
		}
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	preds := fs.String("pred", defaultPreds, "comma-separated predictors")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, r := openTrace(fs.Arg(0))
	defer f.Close()

	facs, err := core.ParseFactories(*preds)
	if err != nil {
		fatal(err)
	}
	ps := make([]core.Predictor, len(facs))
	for i, fac := range facs {
		ps[i] = fac.New()
	}
	// Each trace batch goes through the same core.Bank batch path the
	// serving tier and warm-restart replay use; the SoA scratch is reused
	// across batches.
	bank := core.NewBank(ps...)
	lat := obs.NewHistogram()
	var stepNs int64 // predictor time only, excluding trace decode
	var pcs, vals []uint64
	err = r.ForEachBatch(0, func(evs []trace.Event) error {
		if cap(pcs) < len(evs) {
			pcs = make([]uint64, len(evs))
			vals = make([]uint64, len(evs))
		}
		pcs, vals = pcs[:len(evs)], vals[:len(evs)]
		for j, ev := range evs {
			pcs[j] = ev.PC
			vals[j] = ev.Value
		}
		t0 := time.Now()
		bank.StepBatch(pcs, vals)
		d := time.Since(t0).Nanoseconds()
		stepNs += d
		lat.ObserveInt(d)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	total := bank.Events()
	correct := bank.Correct()
	fmt.Printf("%s: %d events\n", r.Header.Benchmark, total)
	if s := lat.Snapshot(); s.Count > 0 {
		eps := 0.0
		if stepNs > 0 {
			eps = float64(total) / (float64(stepNs) / 1e9)
		}
		fmt.Printf("  batch latency: p50=%s p90=%s p99=%s max=%s (%d batches, %.0f events/sec)\n",
			time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(s.Quantile(0.90)).Round(time.Microsecond),
			time.Duration(s.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(s.Max).Round(time.Microsecond), s.Count, eps)
	}
	for i, fac := range facs {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(correct[i]) / float64(total)
		}
		fmt.Printf("  %-6s %6.2f%%\n", fac.Name, pct)
	}
}

// analyze replays a trace through a predictor bank with a predictability
// tracker attached and reports per-class accuracy versus the entropy
// ceilings the streams themselves permit, plus the hardest and easiest
// PCs and per-predictor ceiling-gap attribution.
func analyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	preds := fs.String("pred", defaultPreds, "comma-separated predictors")
	topN := fs.Int("top", 10, "hardest/easiest PCs to list")
	minEvents := fs.Uint64("min-events", 64, "per-PC event floor below which a PC is not reported")
	logLevel := fs.String("log-level", "", "minimum log level (debug|info|warn|error; default $"+obs.LogLevelEnv+", then info)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	lvl, err := obs.ResolveLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := obs.NewLogger(os.Stderr, lvl)
	f, r := openTrace(fs.Arg(0))
	defer f.Close()

	facs, err := core.ParseFactories(*preds)
	if err != nil {
		fatal(err)
	}
	ps := make([]core.Predictor, len(facs))
	names := make([]string, len(facs))
	for i, fac := range facs {
		ps[i] = fac.New()
		names[i] = fac.Name
	}
	bank := core.NewBank(ps...)
	tr := predstat.NewTracker(predstat.Config{PredNames: names, MinEvents: *minEvents})
	bank.SetObserver(tr)
	var pcs, vals []uint64
	err = r.ForEachBatch(0, func(evs []trace.Event) error {
		if cap(pcs) < len(evs) {
			pcs = make([]uint64, len(evs))
			vals = make([]uint64, len(evs))
		}
		pcs, vals = pcs[:len(evs)], vals[:len(evs)]
		for j, ev := range evs {
			pcs[j] = ev.PC
			vals[j] = ev.Value
		}
		bank.StepBatch(pcs, vals)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	rep := tr.Report(*topN)
	log.Info("analyzed", "benchmark", r.Header.Benchmark, "events", rep.Events,
		"pcs", rep.PCs, "reported", rep.Reported)

	fmt.Printf("%s: %d events, %d PCs (%d with >=%d events)\n\n",
		r.Header.Benchmark, rep.Events, rep.PCs, rep.Reported, *minEvents)
	classTab := analysis.NewTable("accuracy vs entropy ceiling by sequence class",
		"Class", "PCs", "Events", "Entropy (b)", "Ceiling (%)", "Best (%)", "Gap (%)")
	for _, cls := range predstat.ClassLabels {
		cs := rep.Classes[cls]
		if cs == nil {
			continue
		}
		classTab.AddRow(cls, fmt.Sprint(cs.PCs), fmt.Sprint(cs.Events),
			fmt.Sprintf("%.3f", cs.EntropyBits),
			fmt.Sprintf("%.1f", 100*cs.Ceiling),
			fmt.Sprintf("%.1f", 100*cs.Accuracy),
			fmt.Sprintf("%.1f", 100*(cs.Ceiling-cs.Accuracy)))
	}
	classTab.Render(os.Stdout)

	gapTab := analysis.NewTable("per-predictor ceiling gap (judged against each predictor's own class ceiling)",
		"Predictor", "Hit (%)", "Ceiling (%)", "Gap (%)")
	for _, g := range rep.GapByPred {
		if g.Events == 0 {
			continue
		}
		gapTab.AddRow(g.Name,
			fmt.Sprintf("%.1f", 100*float64(g.Hits)/float64(g.Events)),
			fmt.Sprintf("%.1f", 100*g.CeilWeighted/float64(g.Events)),
			fmt.Sprintf("%.1f", 100*g.Gap))
	}
	gapTab.Render(os.Stdout)

	for _, rank := range []struct {
		title string
		list  []predstat.PCReport
	}{
		{"hardest PCs (highest conditional entropy)", rep.Hardest},
		{"easiest PCs (lowest conditional entropy)", rep.Easiest},
	} {
		t := analysis.NewTable(rank.title,
			"PC", "Class", "Events", "Entropy (b)", "Ceiling (%)", "Best", "Best (%)", "Gap (%)")
		for _, pr := range rank.list {
			t.AddRow(fmt.Sprintf("%#x", pr.PC), pr.Class, fmt.Sprint(pr.Events),
				fmt.Sprintf("%.3f", pr.EntropyBits),
				fmt.Sprintf("%.1f", 100*pr.Ceiling),
				pr.BestPred,
				fmt.Sprintf("%.1f", 100*pr.BestAccuracy),
				fmt.Sprintf("%.1f", 100*pr.Gap))
		}
		t.Render(os.Stdout)
	}
}

// drive replays a trace file — or a live benchmark simulation — against a
// running vpserve at the requested client concurrency.
func drive(args []string) {
	fs := flag.NewFlagSet("drive", flag.ExitOnError)
	addr := fs.String("addr", "localhost:9747", "vpserve binary-protocol address")
	clients := fs.Int("clients", 1, "concurrent client connections")
	batch := fs.Int("batch", 0, "events per request (0 = default)")
	verify := fs.Bool("verify", false, "also replay offline and verify the server's tallies match")
	warm := fs.String("warm", "", "snapshot the server was warm-restarted from; -verify replays from this state instead of cold tables")
	benchName := fs.String("bench", "", "drive a live simulation of this workload instead of a trace file")
	opt := fs.Int("opt", bench.RefOpt, "compiler optimization level (with -bench)")
	scale := fs.Int("scale", 1, "input scale factor (with -bench)")
	events := fs.Uint64("events", 0, "event cap (with -bench; 0 = run to completion)")
	traced := fs.Bool("trace", false, "mint a trace context per request; slow requests are retained in the server's GET /trace")
	traceSample := fs.Int("trace-sample", 1024, "with -trace, head-sample 1 in N requests for retention regardless of latency (1 = retain all)")
	fs.Parse(args)
	if *warm != "" && !*verify {
		fatal(fmt.Errorf("-warm only affects verification; pass -verify with it"))
	}

	cfg := serve.DriveConfig{Addr: *addr, Clients: *clients, BatchSize: *batch}
	if *traced {
		if *traceSample <= 0 {
			fatal(fmt.Errorf("-trace-sample must be positive"))
		}
		cfg.TraceSample = *traceSample
	}

	// -verify needs the stream twice (once online, once offline), and a
	// live -bench run produces it in memory anyway; a plain trace drive
	// streams the file through DriveTrace with constant memory instead.
	var evs []serve.Event
	var label string
	var res *serve.DriveResult
	var err error
	switch {
	case *benchName != "":
		if fs.NArg() != 0 {
			usage()
		}
		w := bench.ByName(*benchName)
		if w == nil {
			fatal(fmt.Errorf("unknown benchmark %q", *benchName))
		}
		label = w.Name
		_, err = w.Run(bench.RunConfig{
			Opt:       *opt,
			Scale:     *scale,
			MaxEvents: *events,
			OnValues: func(batch []sim.ValueEvent) {
				for _, ev := range batch {
					evs = append(evs, serve.Event{PC: ev.PC, Value: ev.Value})
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		res, err = serve.DriveEvents(evs, cfg)
	case fs.NArg() == 1 && *verify:
		f, r := openTrace(fs.Arg(0))
		label = r.Header.Benchmark
		rerr := r.ForEachBatch(0, func(batch []trace.Event) error {
			for _, ev := range batch {
				evs = append(evs, serve.Event{PC: ev.PC, Value: ev.Value})
			}
			return nil
		})
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
		res, err = serve.DriveEvents(evs, cfg)
	case fs.NArg() == 1:
		f, r := openTrace(fs.Arg(0))
		label = r.Header.Benchmark
		res, err = serve.DriveTrace(r, cfg)
		f.Close()
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: drove %d events through %s (%d clients): %.0f events/sec\n",
		label, res.Events, *addr, max(*clients, 1), res.EventsPerSec())
	if lat := res.LatencySummary(); lat != "" {
		fmt.Printf("  request latency: %s (%d batches, %.0f events/sec)\n",
			lat, res.Latency.Count, res.EventsPerSec())
	}
	if len(res.SlowTraces) > 0 {
		// The ids past the run's p99 — the ones worth pasting into the
		// server's GET /trace (they are exactly what tail sampling keeps).
		p99 := int64(res.Latency.Quantile(0.99))
		printed := 0
		for _, st := range res.SlowTraces {
			if st.DurNs < p99 && printed > 0 {
				break
			}
			fmt.Printf("  p99+ trace %s  %s\n", st.TraceID, time.Duration(st.DurNs).Round(time.Microsecond))
			printed++
		}
	}
	for i, name := range res.Predictors {
		fmt.Printf("  %-6s %6.2f%%  (%d/%d)\n", name, res.AccuracyPct(i), res.Correct[i], res.Events)
	}

	if *verify {
		facs, err := core.ParseFactories(strings.Join(res.Predictors, ","))
		if err != nil {
			fatal(fmt.Errorf("server predictors not all known locally: %w", err))
		}
		if *clients > 1 {
			// Parity at client concurrency relies on per-PC state: the
			// driver keeps each PC on one connection, but cross-PC
			// predictors still see a nondeterministic global interleaving.
			for _, fac := range facs {
				if !fac.PCLocal {
					fatal(fmt.Errorf(
						"verify: predictor %q keeps cross-PC state, so parity with offline replay requires -clients 1", fac.Name))
				}
			}
		}
		var correct []uint64
		var mode string
		if *warm != "" {
			// Warm-restart parity: replay from the snapshot's restored
			// state, mirroring the server's sharded layout exactly.
			snap, err := snapshot.ReadFile(*warm)
			if err != nil {
				fatal(err)
			}
			if res.ServerPriorEvents != snap.Meta.Events {
				fatal(fmt.Errorf(
					"verify: server reported %d prior events but snapshot %s holds %d; it was restored from a different checkpoint (or has served traffic since restoring)",
					res.ServerPriorEvents, snap.Meta.ID, snap.Meta.Events))
			}
			bank, err := serve.NewWarmBank(snap)
			if err != nil {
				fatal(err)
			}
			if got := strings.Join(bank.Predictors(), ","); got != strings.Join(res.Predictors, ",") {
				fatal(fmt.Errorf("verify: snapshot bank %q does not match server bank %q",
					got, strings.Join(res.Predictors, ",")))
			}
			bank.StepBatch(evs)
			correct = bank.Correct()
			mode = fmt.Sprintf("replay warm from snapshot %s (%d events of prior learning)", snap.Meta.ID, snap.Meta.Events)
		} else {
			if res.ServerPriorEvents > 0 {
				fatal(fmt.Errorf(
					"verify: server had already processed %d events before this drive; offline replay starts from cold tables — pass -warm SNAPSHOT if the server was restored from a checkpoint",
					res.ServerPriorEvents))
			}
			ps := make([]core.Predictor, len(facs))
			for i, fac := range facs {
				ps[i] = fac.New()
			}
			// Cold replay rides the same batch path as the server's shard
			// loop, in bounded chunks so scratch memory stays constant.
			bank := core.NewBank(ps...)
			const chunk = 4096
			pcs := make([]uint64, chunk)
			vals := make([]uint64, chunk)
			for off := 0; off < len(evs); off += chunk {
				end := min(off+chunk, len(evs))
				m := end - off
				for j := 0; j < m; j++ {
					pcs[j] = evs[off+j].PC
					vals[j] = evs[off+j].Value
				}
				bank.StepBatch(pcs[:m], vals[:m])
			}
			correct = bank.Correct()
			mode = "replay from cold tables"
		}
		mismatches := 0
		for i, fac := range facs {
			if correct[i] != res.Correct[i] {
				mismatches++
				fmt.Printf("  VERIFY FAIL %s: offline %d correct, server %d\n", fac.Name, correct[i], res.Correct[i])
			}
		}
		if mismatches > 0 {
			fatal(fmt.Errorf("verify: %d predictor(s) diverged from offline %s", mismatches, mode))
		}
		fmt.Printf("  verify: server tallies identical to offline %s\n", mode)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vptrace:", err)
	os.Exit(1)
}
