// Quickstart: predict a value stream with the paper's three predictor
// families and compare their accuracy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	// A value stream as a (pc, value) sequence: three static
	// instructions with different behaviour, interleaved as they would
	// be in a loop body.
	//   pc 0x40: a loop induction variable (stride +4)
	//   pc 0x44: a repeated non-stride pattern (pointer chasing a ring)
	//   pc 0x48: a constant (loop-invariant load)
	ring := []uint64{0x8000, 0x8040, 0x8010, 0x8030}
	type event struct{ pc, value uint64 }
	var stream []event
	for i := 0; i < 400; i++ {
		stream = append(stream,
			event{0x40, uint64(4 * i)},
			event{0x44, ring[i%len(ring)]},
			event{0x48, 1234},
		)
	}

	predictors := []core.Predictor{
		core.NewLastValue(),        // computational: identity
		core.NewStride2Delta(),     // computational: last + stride (2-delta)
		core.NewFCM(3),             // context based: order-3 fcm
		core.NewStrideFCMHybrid(3), // chooser hybrid of the two families
	}

	fmt.Println("predictor  accuracy")
	for _, p := range predictors {
		var acc core.Accuracy
		for _, ev := range stream {
			pred, ok := p.Predict(ev.pc)
			acc.Observe(ok && pred == ev.value)
			p.Update(ev.pc, ev.value) // immediate update, as in the paper
		}
		fmt.Printf("%-9s  %6.2f%%\n", p.Name(), acc.Percent())
	}

	fmt.Println()
	fmt.Println("Expected shape: last value only gets the constant (~33%); stride adds the")
	fmt.Println("induction variable and a bit of the ring (~75%); fcm gets constant + ring")
	fmt.Println("but not the unbounded stride (~67%); the hybrid combines both (~100%) —")
	fmt.Println("the complementarity that motivates the paper's Section 4.2 hybrid.")
}
