// Tracereplay: capture a workload's value trace to a file, then replay it
// through predictors without re-running the simulation — the decoupled
// trace-driven methodology of the paper.
//
// Run with: go run ./examples/tracereplay
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	path := filepath.Join(os.TempDir(), "compress.vpt")
	workload := bench.Compress()

	// --- capture ---
	f, err := os.Create(path)
	check(err)
	tw, err := trace.NewWriter(f, trace.Header{Benchmark: workload.Name, Opt: bench.RefOpt, Scale: 1})
	check(err)
	_, err = workload.Run(bench.RunConfig{
		Opt:       bench.RefOpt,
		MaxEvents: 200_000,
		OnValue: func(ev sim.ValueEvent) {
			check(tw.Write(trace.FromSim(ev)))
		},
	})
	check(err)
	check(tw.Close())
	check(f.Close())
	st, err := os.Stat(path)
	check(err)
	fmt.Printf("captured %d events to %s (%d bytes, %.2f bits/event)\n\n",
		tw.Count(), path, st.Size(), 8*float64(st.Size())/float64(tw.Count()))

	// --- replay against several predictor configurations ---
	configs := []func() core.Predictor{
		func() core.Predictor { return core.NewLastValue() },
		func() core.Predictor { return core.NewStride2Delta() },
		func() core.Predictor { return core.NewFCM(1) },
		func() core.Predictor { return core.NewFCM(3) },
		func() core.Predictor { return core.NewFCMNoBlend(3) },
	}
	for _, mk := range configs {
		p := mk()
		rf, err := os.Open(path)
		check(err)
		r, err := trace.NewReader(rf)
		check(err)
		var acc core.Accuracy
		check(r.ForEach(func(ev trace.Event) error {
			pred, ok := p.Predict(ev.PC)
			acc.Observe(ok && pred == ev.Value)
			p.Update(ev.PC, ev.Value)
			return nil
		}))
		check(rf.Close())
		fmt.Printf("%-8s %6.2f%%   (%s trace, %d events)\n",
			p.Name(), acc.Percent(), r.Header.Benchmark, acc.Total)
	}
	fmt.Println("\nEvery replay consumed the identical stream: comparisons are exact.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
