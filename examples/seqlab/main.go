// Seqlab: the sequence-class laboratory. Generates every value-sequence
// class from Section 1.1 of the paper, classifies it back, and measures
// each predictor's learning time (LT) and learning degree (LD) — an
// interactive version of the paper's Table 1.
//
// Run with: go run ./examples/seqlab
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seqclass"
)

// predictor is the minimal surface seqlab needs; all core predictors
// satisfy it.
type predictor interface {
	Name() string
	Predict(pc uint64) (uint64, bool)
	Update(pc uint64, value uint64)
}

func main() {
	const n = 300
	sequences := []struct {
		name string
		gen  seqclass.Gen
	}{
		{"constant 5 5 5 ...", seqclass.ConstantGen(5)},
		{"stride 10 13 16 ...", seqclass.StrideGen(10, 3)},
		{"non-stride (hash)", seqclass.NonStrideGen(1)},
		{"repeated stride 1 2 3 | ...", seqclass.RepeatedGen(seqclass.StridePeriod(1, 1, 3))},
		{"repeated non-stride p=4", seqclass.RepeatedGen(seqclass.NonStridePeriod(9, 4))},
		{"composed: 1 2 3 then 99, repeated", seqclass.ComposeGen(
			[]seqclass.Gen{seqclass.StrideGen(1, 1), seqclass.ConstantGen(99)},
			[]int{3, 1})},
	}
	makers := []func() predictor{
		func() predictor { return core.NewLastValue() },
		func() predictor { return core.NewStride2Delta() },
		func() predictor { return core.NewFCM(3) },
	}

	for _, s := range sequences {
		vals := seqclass.Take(s.gen, n)
		kind := seqclass.Classify(vals, 16)
		fmt.Printf("%-34s class=%-3s first: %v...\n", s.name, kind, vals[:8])
		for _, mk := range makers {
			p := mk()
			prof := seqclass.Measure(p, s.gen, n)
			if prof.LT == 0 {
				fmt.Printf("    %-5s never correct\n", p.Name())
			} else {
				fmt.Printf("    %-5s first correct at value %d, then %.1f%% correct\n",
					p.Name(), prof.LT, prof.LD)
			}
		}
		fmt.Println()
	}
}
