// Hybrid: build custom hybrid predictors and measure how they divide up a
// real workload's value stream, reproducing the Section 4.2 argument that
// a stride+fcm hybrid with a chooser approaches pure fcm accuracy.
//
// Run with: go run ./examples/hybrid
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	workload := bench.M88ksim()
	fmt.Printf("workload: %s (%s)\n\n", workload.Name, workload.Description)

	// Candidates: the paper's components, the suggested chooser hybrid,
	// and a per-instruction-type router (Section 4.1's suggestion).
	candidates := []core.Predictor{
		core.NewStride2Delta(),
		core.NewFCM(3),
		core.NewStrideFCMHybrid(3),
	}
	perType := core.NewClassifiedPredictor("bytype", func(class uint8) core.Predictor {
		// Stride for the arithmetic classes it models well; fcm elsewhere.
		if class == 0 { // isa.CatAddSub
			return core.NewStride2Delta()
		}
		return core.NewFCM(3)
	})

	accs := make([]core.Accuracy, len(candidates))
	var perTypeAcc core.Accuracy
	var setTracker *core.SetTracker
	setTracker = core.NewSetTracker(core.NewStride2Delta(), core.NewFCM(3))

	_, err := workload.Run(bench.RunConfig{
		Opt:       bench.RefOpt,
		MaxEvents: 300_000,
		OnValue: func(ev sim.ValueEvent) {
			for i, p := range candidates {
				pred, ok := p.Predict(ev.PC)
				accs[i].Observe(ok && pred == ev.Value)
				p.Update(ev.PC, ev.Value)
			}
			pred, ok := perType.PredictClass(uint8(ev.Cat), ev.PC)
			perTypeAcc.Observe(ok && pred == ev.Value)
			perType.UpdateClass(uint8(ev.Cat), ev.PC, ev.Value)
			setTracker.Observe(ev.PC, ev.Value)
		},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("predictor        accuracy")
	for i, p := range candidates {
		fmt.Printf("%-15s  %6.2f%%\n", p.Name(), accs[i].Percent())
	}
	fmt.Printf("%-15s  %6.2f%%\n\n", "per-type router", perTypeAcc.Percent())

	fmt.Println("overlap of the two components (fraction of all predictions):")
	labels := []string{"neither", "s2 only", "fcm3 only", "both"}
	for mask := uint64(0); mask < 4; mask++ {
		fmt.Printf("  %-9s %6.2f%%\n", labels[mask], 100*setTracker.Fraction(mask))
	}
	fmt.Println("\nThe hybrid should sit at or above max(s2, fcm3): the chooser routes")
	fmt.Println("each static instruction to whichever component predicts it better.")
}
